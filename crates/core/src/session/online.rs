//! Online mode (§4.2) — the full multi-threaded workflow over real UDP.
//!
//! "As a first step, the textual Stethoscope is launched in a dedicated
//! thread. ... The query whose execution plan needs to be analyzed is
//! launched next in a separate thread. ... The MonetDB server generates
//! the dot file content and sends it over on the UDP stream to the
//! textual Stethoscope, before query execution begins. A separate thread
//! monitors the received UDP stream for dot file and execution trace
//! file content. It filters the dot file content, generates a new dot
//! file ... As the trace file grows in size, its content is sampled in a
//! buffer. ... An algorithm for run-time analysis, to filter lengthy MAL
//! instructions is applied on the buffer content."

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stetho_dot::plan_to_dot;
use stetho_engine::{Catalog, ExecOptions, Interpreter, ProfilerConfig, UdpSink};
use stetho_layout::{layout, parse_svg, write_svg, LayoutOptions, SceneGraph};
use stetho_mal::{Plan, VerifyReport};
use stetho_profiler::tracefile::TraceWriter;
use stetho_profiler::udp::StreamItem;
use stetho_profiler::{
    FilterOptions, ProfilerEmitter, SampleBuffer, TextualStethoscope, TraceEvent,
};
use stetho_sql::{compile_with, CompileOptions};
use stetho_zvtm::edt::EdtStats;
use stetho_zvtm::{EventDispatchThread, VirtualSpace};

use crate::color::{ColorState, PairElision, ThresholdColoring};
use crate::mapping::TraceDotMap;
use crate::progress::{ProgressModel, ProgressSnapshot};
use crate::session::SessionError;

static SESSION_SEQ: AtomicU64 = AtomicU64::new(0);

/// Online session configuration.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Mitosis partitions for the compiled plan (1 = serial plan).
    pub partitions: usize,
    /// Engine worker threads (0 = sequential interpreter).
    pub workers: usize,
    /// EDT pacing in ms (paper default 150).
    pub pacing_ms: u64,
    /// Sample buffer capacity (§4.2).
    pub sample_capacity: usize,
    /// Optional user threshold (µs) enabling the second §4.2.1 algorithm.
    pub threshold_usec: Option<u64>,
    /// Server-side profiler filter.
    pub filter: FilterOptions,
    /// Where the monitor writes the received dot file.
    pub dot_path: PathBuf,
    /// Where the monitor redirects the received trace.
    pub trace_path: PathBuf,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        let id = SESSION_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir();
        OnlineConfig {
            partitions: 1,
            workers: 0,
            pacing_ms: 150,
            sample_capacity: 256,
            threshold_usec: None,
            filter: FilterOptions::all(),
            dot_path: dir.join(format!("stetho_online_{}_{id}.dot", std::process::id())),
            trace_path: dir.join(format!("stetho_online_{}_{id}.trace", std::process::id())),
        }
    }
}

/// Everything an online run produces for inspection.
pub struct OnlineOutcome {
    /// The executed plan.
    pub plan: Plan,
    /// Static-verifier report for the compiled plan (diagnostics are
    /// surfaced to the session; a clean report means no errors).
    pub verify: VerifyReport,
    /// Dot text as received over the stream.
    pub dot_text: String,
    /// Scene built when the dot stream completed.
    pub scene: SceneGraph,
    /// Final glyph canvas (colors as the EDT left them).
    pub space: VirtualSpace,
    /// pc ↔ node ↔ glyph mapping.
    pub map: TraceDotMap,
    /// All received (filtered) trace events, arrival order.
    pub events: Vec<TraceEvent>,
    /// Final pair-elision states over the whole trace.
    pub final_states: HashMap<usize, ColorState>,
    /// Threshold-algorithm states, when a threshold was configured.
    pub threshold_states: HashMap<usize, ColorState>,
    /// EDT statistics (dispatched, coalesced, backlog peak).
    pub edt_stats: EdtStats,
    /// Events lost to sample-buffer eviction.
    pub samples_dropped: u64,
    /// Result-set row count of the query.
    pub result_rows: usize,
    /// Final progress snapshot (should read 100% done).
    pub progress: ProgressSnapshot,
    /// Wall-clock duration of the whole session.
    pub elapsed: Duration,
}

/// The online-mode driver.
pub struct OnlineSession;

impl OnlineSession {
    /// Run the complete §4.2 workflow for `sql` against `catalog`:
    /// textual-Stethoscope thread, query thread, stream monitoring, dot
    /// capture, trace redirection, sampling, and run-time coloring.
    pub fn run(
        catalog: Arc<Catalog>,
        sql: &str,
        cfg: &OnlineConfig,
    ) -> Result<OnlineOutcome, SessionError> {
        let started = Instant::now();
        // Compile up front: the server needs the plan (and its dot) at
        // query launch.
        let compiled = compile_with(
            &catalog,
            sql,
            &CompileOptions {
                plan_name: "user.online".into(),
                partitions: cfg.partitions.max(1),
                skip_optimizers: false,
            },
        )
        .map_err(|e| SessionError::new(format!("compile: {e}")))?;
        let plan = compiled.plan;
        // Surface the static-verifier diagnostics for the session. The
        // pipeline already guarantees cleanliness in debug builds; here
        // the report rides along so tools can show the lint findings.
        let verify = plan.verify();
        let dot_text = plan_to_dot(&plan, stetho_dot::LabelStyle::FullStatement);

        // Textual Stethoscope thread (the listener runs inside).
        let mut steth = TextualStethoscope::bind().map_err(SessionError::from)?;
        steth.set_default_filter(cfg.filter.clone());
        let rx = steth.start();
        let addr = steth.local_addr().map_err(SessionError::from)?;

        // Query thread: send dot first, run, then mark end of trace.
        let plan_for_query = plan.clone();
        let catalog_for_query = Arc::clone(&catalog);
        let dot_for_query = dot_text.clone();
        let workers = cfg.workers;
        let query_thread = std::thread::Builder::new()
            .name("mserver-query".into())
            .spawn(move || -> Result<usize, String> {
                let emitter = ProfilerEmitter::connect(addr).map_err(|e| e.to_string())?;
                emitter
                    .send_dot(&plan_for_query.name, &dot_for_query)
                    .map_err(|e| e.to_string())?;
                let sink = UdpSink::new(emitter);
                let opts = if workers > 1 {
                    ExecOptions::parallel(workers, ProfilerConfig::to_sink(sink.clone()))
                } else {
                    ExecOptions::profiled(ProfilerConfig::to_sink(sink.clone()))
                };
                let interp = Interpreter::new(catalog_for_query);
                let out = interp
                    .execute(&plan_for_query, &opts)
                    .map_err(|e| e.to_string())?;
                sink.emitter()
                    .send_end_of_trace()
                    .map_err(|e| e.to_string())?;
                Ok(out.result.map(|r| r.rows()).unwrap_or(0))
            })
            .map_err(SessionError::from)?;

        // Monitor: split dot vs trace content, redirect to files, sample,
        // color.
        let mut dot_buffer = String::new();
        let mut received_dot: Option<String> = None;
        let mut scene: Option<SceneGraph> = None;
        let mut space: Option<VirtualSpace> = None;
        let mut map = TraceDotMap::default();
        let mut trace_writer = TraceWriter::create(&cfg.trace_path).map_err(SessionError::from)?;
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut sample = SampleBuffer::new(cfg.sample_capacity);
        let mut edt = EventDispatchThread::new(cfg.pacing_ms);
        let mut threshold = cfg.threshold_usec.map(ThresholdColoring::new);
        let mut progress = ProgressModel::new(&plan);
        let mut last_states: HashMap<usize, ColorState> = HashMap::new();
        let mut saw_eot = false;
        let deadline = Instant::now() + Duration::from_secs(120);

        while !saw_eot {
            if Instant::now() > deadline {
                steth.stop();
                return Err(SessionError::new("online session timed out"));
            }
            let item = match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(i) => i,
                Err(_) => continue,
            };
            match item {
                StreamItem::DotBegin { .. } => dot_buffer.clear(),
                StreamItem::DotLine { line, .. } => {
                    dot_buffer.push_str(&line);
                    dot_buffer.push('\n');
                }
                StreamItem::DotEnd { .. } => {
                    // "It filters the dot file content, generates a new
                    // dot file, and stores the content in it."
                    std::fs::write(&cfg.dot_path, &dot_buffer)?;
                    let graph = stetho_dot::parse_dot(&dot_buffer)
                        .map_err(|e| SessionError::new(format!("received dot: {e}")))?;
                    let laid = layout(&graph, &LayoutOptions::default());
                    let svg = write_svg(&laid);
                    let sc = parse_svg(&svg).map_err(|e| SessionError::new(format!("svg: {e}")))?;
                    let (sp, node_glyphs) = VirtualSpace::from_scene(&sc);
                    map = TraceDotMap::from_scene(&sc);
                    map.attach_glyphs(&node_glyphs);
                    scene = Some(sc);
                    space = Some(sp);
                    received_dot = Some(dot_buffer.clone());
                }
                StreamItem::Event { event, .. } => {
                    trace_writer.write_event(&event)?;
                    progress.on_event(&event);
                    sample.push(event.clone());
                    if let Some(t) = threshold.as_mut() {
                        t.on_event(&event);
                        t.on_tick(event.clk);
                    }
                    events.push(event);
                    // Run-time analysis over the sample buffer (§4.2.1).
                    let snapshot = sample.snapshot();
                    let changes = PairElision.changes(&snapshot);
                    let now_ms = started.elapsed().as_millis() as u64;
                    if let Some(sp) = space.as_mut() {
                        for c in changes {
                            if last_states.get(&c.pc) != Some(&c.state) {
                                if let Some(g) = map.shape_of_pc(c.pc) {
                                    edt.enqueue(g, c.state.fill(), now_ms);
                                }
                                last_states.insert(c.pc, c.state);
                            }
                        }
                        edt.advance_into(now_ms, sp);
                    }
                }
                StreamItem::EndOfTrace { .. } => saw_eot = true,
                StreamItem::Garbled { line, .. } => {
                    return Err(SessionError::new(format!("garbled stream line: {line}")))
                }
            }
        }
        trace_writer.flush()?;
        steth.stop();
        let result_rows = query_thread
            .join()
            .map_err(|_| SessionError::new("query thread panicked"))?
            .map_err(SessionError::new)?;

        let mut space = space.ok_or_else(|| SessionError::new("no dot file received"))?;
        let scene = scene.expect("scene set with space");
        // Drain the EDT so the final frame shows every landed color.
        let ops = edt.flush();
        for d in &ops {
            space.glyph_mut(d.op.glyph).color = d.op.color;
        }

        let final_states = PairElision.analyse(&events);
        let threshold_states = threshold
            .map(|t| {
                events
                    .iter()
                    .map(|e| (e.pc, t.state(e.pc)))
                    .collect::<HashMap<_, _>>()
            })
            .unwrap_or_default();

        Ok(OnlineOutcome {
            plan,
            verify,
            dot_text: received_dot.unwrap_or(dot_text),
            scene,
            space,
            map,
            events,
            final_states,
            threshold_states,
            edt_stats: edt.stats,
            samples_dropped: sample.dropped(),
            result_rows,
            progress: progress.snapshot(),
            elapsed: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stetho_engine::{Bat, TableDef};
    use stetho_mal::MalType;

    fn catalog_sized(n: i64) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.add_table(
            TableDef::new(
                "lineitem",
                vec![
                    (
                        "l_partkey".into(),
                        MalType::Int,
                        Bat::ints((0..n).map(|i| i % 10).collect()),
                    ),
                    (
                        "l_tax".into(),
                        MalType::Dbl,
                        Bat::dbls((0..n).map(|i| i as f64 * 0.001).collect()),
                    ),
                ],
            )
            .unwrap(),
        );
        Arc::new(c)
    }

    fn catalog() -> Arc<Catalog> {
        catalog_sized(500)
    }

    #[test]
    fn online_session_end_to_end() {
        let cfg = OnlineConfig {
            pacing_ms: 0, // drain immediately in tests
            ..Default::default()
        };
        let out = OnlineSession::run(
            catalog(),
            "select l_tax from lineitem where l_partkey = 1",
            &cfg,
        )
        .unwrap();
        assert_eq!(out.result_rows, 50);
        assert_eq!(out.events.len(), out.plan.len() * 2);
        assert_eq!(out.progress.done, out.plan.len(), "progress reads 100%");
        assert_eq!(out.progress.fraction, 1.0);
        assert!(!out.dot_text.is_empty());
        assert!(out.verify.is_clean(), "compiled plan verifies clean");
        assert_eq!(out.scene.nodes.len(), out.plan.len());
        assert!(out.edt_stats.dispatched > 0);
        // Trace and dot files were written by the monitor.
        assert!(cfg.trace_path.exists());
        assert!(cfg.dot_path.exists());
        std::fs::remove_file(&cfg.trace_path).ok();
        std::fs::remove_file(&cfg.dot_path).ok();
    }

    #[test]
    fn online_parallel_with_mitosis() {
        let cfg = OnlineConfig {
            partitions: 4,
            workers: 4,
            pacing_ms: 0,
            ..Default::default()
        };
        let out = OnlineSession::run(
            catalog_sized(200_000),
            "select l_tax from lineitem where l_partkey = 3",
            &cfg,
        )
        .unwrap();
        assert_eq!(out.result_rows, 20_000);
        // The mitosis plan is wide; all its instructions traced.
        assert!(out.plan.len() > 20);
        assert_eq!(out.events.len(), out.plan.len() * 2);
        let threads: std::collections::HashSet<usize> =
            out.events.iter().map(|e| e.thread).collect();
        assert!(threads.len() >= 2, "parallel execution visible in trace");
        std::fs::remove_file(&cfg.trace_path).ok();
        std::fs::remove_file(&cfg.dot_path).ok();
    }

    #[test]
    fn threshold_algorithm_runs_when_configured() {
        let cfg = OnlineConfig {
            threshold_usec: Some(0), // everything is "costly"
            pacing_ms: 0,
            ..Default::default()
        };
        let out =
            OnlineSession::run(catalog(), "select sum(l_tax) as s from lineitem", &cfg).unwrap();
        assert!(!out.threshold_states.is_empty());
        std::fs::remove_file(&cfg.trace_path).ok();
        std::fs::remove_file(&cfg.dot_path).ok();
    }

    #[test]
    fn compile_errors_surface() {
        let cfg = OnlineConfig::default();
        let r = OnlineSession::run(catalog(), "select nothing from nowhere", &cfg);
        assert!(r.is_err());
    }
}
