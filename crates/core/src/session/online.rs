//! Online mode (§4.2) — the full multi-threaded workflow over real UDP.
//!
//! "As a first step, the textual Stethoscope is launched in a dedicated
//! thread. ... The query whose execution plan needs to be analyzed is
//! launched next in a separate thread. ... The MonetDB server generates
//! the dot file content and sends it over on the UDP stream to the
//! textual Stethoscope, before query execution begins. A separate thread
//! monitors the received UDP stream for dot file and execution trace
//! file content. It filters the dot file content, generates a new dot
//! file ... As the trace file grows in size, its content is sampled in a
//! buffer. ... An algorithm for run-time analysis, to filter lengthy MAL
//! instructions is applied on the buffer content."
//!
//! The transport is assumed hostile (frames can be dropped, reordered,
//! duplicated, or truncated — see [`stetho_profiler::wire`]), and the
//! session degrades gracefully instead of wedging:
//!
//! * a reported [`StreamItem::Lost`] gap (or a stream that ends without
//!   end-of-trace) synthesizes `done` events for instructions stuck in
//!   the started state, so coloring and progress converge;
//! * instructions whose events vanished entirely are marked
//!   [`InstrState::Lost`] and count toward completion;
//! * a damaged or missing dot stream falls back to the locally compiled
//!   dot text (the session compiled the plan itself);
//! * garbled lines are counted, not fatal.
//!
//! The resulting [`OnlineOutcome`] carries a [`TransportStats`] snapshot
//! next to the verifier report so tools can show transport health.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stetho_dot::plan_to_dot;
use stetho_engine::{Catalog, ExecOptions, Interpreter, ProfilerConfig, UdpSink};
use stetho_layout::{layout, parse_svg, write_svg, LayoutOptions, SceneGraph};
use stetho_mal::{Plan, VerifyReport};
use stetho_profiler::chaos::{ChaosConfig, ChaosLink, ChaosReport};
use stetho_profiler::reassembly::{TransportStats, DEFAULT_REORDER_WINDOW};
use stetho_profiler::tracefile::TraceWriter;
use stetho_profiler::udp::{StreamItem, StreamRecvError};
use stetho_profiler::{
    FilterOptions, ProfilerEmitter, SampleBuffer, TextualStethoscope, TraceEvent,
};
use stetho_sql::{compile_with, CompileOptions};
use stetho_zvtm::edt::EdtStats;
use stetho_zvtm::{EventDispatchThread, VirtualSpace};

use crate::color::{ColorState, PairElision, ThresholdColoring};
use crate::mapping::TraceDotMap;
use crate::metrics::SessionMetrics;
use crate::progress::{InstrState, ProgressModel, ProgressSnapshot};
use crate::replay::repair_lost_dones;
use crate::session::SessionError;

static SESSION_SEQ: AtomicU64 = AtomicU64::new(0);

/// Online session configuration.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Mitosis partitions for the compiled plan (1 = serial plan).
    pub partitions: usize,
    /// Engine worker threads (0 = sequential interpreter).
    pub workers: usize,
    /// EDT pacing in ms (paper default 150).
    pub pacing_ms: u64,
    /// Sample buffer capacity (§4.2).
    pub sample_capacity: usize,
    /// Optional user threshold (µs) enabling the second §4.2.1 algorithm.
    pub threshold_usec: Option<u64>,
    /// Server-side profiler filter.
    pub filter: FilterOptions,
    /// Where the monitor writes the received dot file.
    pub dot_path: PathBuf,
    /// Where the monitor redirects the received trace.
    pub trace_path: PathBuf,
    /// Route the stream through a deterministic in-memory [`ChaosLink`]
    /// with this fault schedule instead of real UDP (testing).
    pub chaos: Option<ChaosConfig>,
    /// Per-source reorder window of the receiver's reassembly stage.
    pub reorder_window: usize,
    /// Self-observability registry. When set, the session publishes
    /// analyse latency, pacing adherence, EDT backlog, sampling loss
    /// and progress gauges into it, bridges the receiver's transport
    /// counters, and hands it to the engine's dataflow scheduler.
    pub metrics: Option<Arc<stetho_obsv::Registry>>,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        let id = SESSION_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir();
        OnlineConfig {
            partitions: 1,
            workers: 0,
            pacing_ms: 150,
            sample_capacity: 256,
            threshold_usec: None,
            filter: FilterOptions::all(),
            dot_path: dir.join(format!("stetho_online_{}_{id}.dot", std::process::id())),
            trace_path: dir.join(format!("stetho_online_{}_{id}.trace", std::process::id())),
            chaos: None,
            reorder_window: DEFAULT_REORDER_WINDOW,
            metrics: None,
        }
    }
}

/// Everything an online run produces for inspection.
pub struct OnlineOutcome {
    /// The executed plan.
    pub plan: Plan,
    /// Static-verifier report for the compiled plan (diagnostics are
    /// surfaced to the session; a clean report means no errors).
    pub verify: VerifyReport,
    /// Dot text the scene was built from (as received, or the local
    /// fallback when the received copy was damaged — see
    /// [`OnlineOutcome::dot_degraded`]).
    pub dot_text: String,
    /// Scene built when the dot stream completed.
    pub scene: SceneGraph,
    /// Final glyph canvas (colors as the EDT left them).
    pub space: VirtualSpace,
    /// pc ↔ node ↔ glyph mapping.
    pub map: TraceDotMap,
    /// All received (filtered) trace events in arrival order, plus any
    /// synthesized `done`s appended by gap recovery.
    pub events: Vec<TraceEvent>,
    /// Final pair-elision states over the whole trace.
    pub final_states: HashMap<usize, ColorState>,
    /// Threshold-algorithm states, when a threshold was configured.
    pub threshold_states: HashMap<usize, ColorState>,
    /// EDT statistics (dispatched, coalesced, backlog peak).
    pub edt_stats: EdtStats,
    /// Events lost to sample-buffer eviction.
    pub samples_dropped: u64,
    /// Result-set row count of the query.
    pub result_rows: usize,
    /// Final progress snapshot (done + lost should cover the plan).
    pub progress: ProgressSnapshot,
    /// Wall-clock duration of the whole session.
    pub elapsed: Duration,
    /// Receiver-side transport health counters.
    pub transport: TransportStats,
    /// Ground truth of what the chaos link did to the traffic (only in
    /// chaos mode), for exact reconciliation against `transport`.
    pub chaos_report: Option<ChaosReport>,
    /// Sequence-number gaps reported by the reassembly stage.
    pub lost_gaps: Vec<(u64, u64)>,
    /// Garbled lines/frames observed (counted, not fatal).
    pub garbled_lines: u64,
    /// `done` events synthesized so the animation converged.
    pub synthesized_dones: usize,
    /// True when the received dot stream was unusable and the locally
    /// compiled dot text was used instead.
    pub dot_degraded: bool,
}

/// The per-item monitor state (the paper's "separate thread [that]
/// monitors the received UDP stream"), shared between the live loop and
/// the post-join grace drain.
struct Monitor<'a> {
    cfg: &'a OnlineConfig,
    plan: &'a Plan,
    local_dot: &'a str,
    started: Instant,
    dot_buffer: String,
    used_dot: Option<String>,
    scene: Option<SceneGraph>,
    space: Option<VirtualSpace>,
    map: TraceDotMap,
    trace_writer: TraceWriter,
    events: Vec<TraceEvent>,
    sample: SampleBuffer,
    edt: EventDispatchThread,
    threshold: Option<ThresholdColoring>,
    progress: ProgressModel,
    last_states: HashMap<usize, ColorState>,
    saw_eot: bool,
    lost_gaps: Vec<(u64, u64)>,
    garbled_lines: u64,
    dot_degraded: bool,
    metrics: Option<SessionMetrics>,
}

impl Monitor<'_> {
    fn handle(&mut self, item: StreamItem) -> Result<(), SessionError> {
        match item {
            StreamItem::DotBegin { .. } => self.dot_buffer.clear(),
            StreamItem::DotLine { line, .. } => {
                self.dot_buffer.push_str(&line);
                self.dot_buffer.push('\n');
            }
            StreamItem::DotEnd { .. } => {
                let received = std::mem::take(&mut self.dot_buffer);
                self.adopt_dot(received)?;
            }
            StreamItem::Event { event, .. } => self.ingest_event(event, false)?,
            StreamItem::EndOfTrace { .. } => self.saw_eot = true,
            StreamItem::Garbled { .. } => self.garbled_lines += 1,
            StreamItem::Lost {
                from_seq, to_seq, ..
            } => self.lost_gaps.push((from_seq, to_seq)),
        }
        Ok(())
    }

    /// Build the scene from the received dot text, falling back to the
    /// locally compiled dot when the received copy was damaged in
    /// transit (missing lines, lost begin/end framing).
    fn adopt_dot(&mut self, received: String) -> Result<(), SessionError> {
        let usable = match stetho_dot::parse_dot(&received) {
            Ok(graph) => graph.nodes().len() == self.plan.len(),
            Err(_) => false,
        };
        let text = if usable {
            received
        } else {
            self.dot_degraded = true;
            self.local_dot.to_string()
        };
        // "It filters the dot file content, generates a new dot file,
        // and stores the content in it."
        std::fs::write(&self.cfg.dot_path, &text)?;
        let graph =
            stetho_dot::parse_dot(&text).map_err(|e| SessionError::new(format!("dot: {e}")))?;
        let laid = layout(&graph, &LayoutOptions::default());
        let svg = write_svg(&laid);
        let sc = parse_svg(&svg).map_err(|e| SessionError::new(format!("svg: {e}")))?;
        let (sp, node_glyphs) = VirtualSpace::from_scene(&sc);
        self.map = TraceDotMap::from_scene(&sc);
        self.map.attach_glyphs(&node_glyphs);
        self.scene = Some(sc);
        self.space = Some(sp);
        self.used_dot = Some(text);
        Ok(())
    }

    fn ingest_event(&mut self, event: TraceEvent, synthetic: bool) -> Result<(), SessionError> {
        if !synthetic {
            self.trace_writer.write_event(&event)?;
        }
        self.progress.on_event(&event);
        self.sample.push(event.clone());
        if let Some(t) = self.threshold.as_mut() {
            t.on_event(&event);
            t.on_tick(event.clk);
        }
        self.events.push(event);
        // Run-time analysis over the sample buffer (§4.2.1), diffed
        // against the previous round so nodes whose pair completed and
        // elided — or slid out of the bounded window — repaint back to
        // the default fill instead of keeping a stale RED.
        let round_started = Instant::now();
        let snapshot = self.sample.snapshot();
        let changes = PairElision.diff(&snapshot, &self.last_states);
        let now_ms = self.started.elapsed().as_millis() as u64;
        if let Some(sp) = self.space.as_mut() {
            for c in changes {
                if let Some(g) = self.map.shape_of_pc(c.pc) {
                    self.edt.enqueue(g, c.state.fill(), now_ms);
                }
                if c.state == ColorState::Uncolored {
                    self.last_states.remove(&c.pc);
                } else {
                    self.last_states.insert(c.pc, c.state);
                }
            }
            self.edt.advance_into(now_ms, sp);
        }
        if let Some(m) = &self.metrics {
            m.record_round(
                round_started.elapsed().as_micros() as u64,
                self.cfg.pacing_ms,
            );
            m.edt_queue_depth.set(self.edt.backlog() as f64);
            m.samples_dropped.set(self.sample.lifetime_dropped());
            m.set_progress(&self.progress.snapshot());
        }
        Ok(())
    }

    /// Converge after the stream ended: when anything was (or may have
    /// been) lost, close dangling starts with synthesized `done`s and
    /// write untraced instructions off to the gaps, so the picture
    /// settles instead of staying RED forever.
    fn converge(&mut self) -> Result<usize, SessionError> {
        if self.saw_eot && self.lost_gaps.is_empty() {
            return Ok(0);
        }
        let mut repaired = self.events.clone();
        let synthesized = repair_lost_dones(&mut repaired);
        for e in repaired.split_off(self.events.len()) {
            self.ingest_event(e, true)?;
        }
        for pc in 0..self.plan.len() {
            if self.progress.state_of(pc) == InstrState::Pending {
                self.progress.mark_lost(pc);
            }
        }
        Ok(synthesized)
    }
}

/// The online-mode driver.
pub struct OnlineSession;

impl OnlineSession {
    /// Run the complete §4.2 workflow for `sql` against `catalog`:
    /// textual-Stethoscope thread, query thread, stream monitoring, dot
    /// capture, trace redirection, sampling, and run-time coloring.
    pub fn run(
        catalog: Arc<Catalog>,
        sql: &str,
        cfg: &OnlineConfig,
    ) -> Result<OnlineOutcome, SessionError> {
        let started = Instant::now();
        // Compile up front: the server needs the plan (and its dot) at
        // query launch.
        let compiled = compile_with(
            &catalog,
            sql,
            &CompileOptions {
                plan_name: "user.online".into(),
                partitions: cfg.partitions.max(1),
                skip_optimizers: false,
            },
        )
        .map_err(|e| SessionError::new(format!("compile: {e}")))?;
        let plan = compiled.plan;
        // Surface the static-verifier diagnostics for the session. The
        // pipeline already guarantees cleanliness in debug builds; here
        // the report rides along so tools can show the lint findings.
        let verify = plan.verify();
        let dot_text = plan_to_dot(&plan, stetho_dot::LabelStyle::FullStatement);

        // Textual Stethoscope thread (the listener runs inside), over
        // real UDP or a seeded in-memory chaos link.
        let chaos_link = cfg.chaos.map(ChaosLink::new);
        let mut steth = match &chaos_link {
            Some(link) => TextualStethoscope::over(link),
            None => TextualStethoscope::bind().map_err(SessionError::from)?,
        };
        steth.set_reorder_window(cfg.reorder_window);
        steth.set_default_filter(cfg.filter.clone());
        if let Some(reg) = &cfg.metrics {
            crate::metrics::bridge_transport(reg, steth.counters());
        }
        let rx = steth.start();
        let emitter = match &chaos_link {
            Some(link) => ProfilerEmitter::over(link),
            None => {
                let addr = steth.local_addr().map_err(SessionError::from)?;
                ProfilerEmitter::connect(addr).map_err(SessionError::from)?
            }
        };

        // Query thread: send dot first, run, then mark end of trace.
        let plan_for_query = plan.clone();
        let catalog_for_query = Arc::clone(&catalog);
        let dot_for_query = dot_text.clone();
        let workers = cfg.workers;
        let metrics_for_query = cfg.metrics.clone();
        let query_thread = std::thread::Builder::new()
            .name("mserver-query".into())
            .spawn(move || -> Result<usize, String> {
                emitter
                    .send_dot(&plan_for_query.name, &dot_for_query)
                    .map_err(|e| e.to_string())?;
                let sink = UdpSink::new(emitter);
                let mut opts = if workers > 1 {
                    ExecOptions::parallel(workers, ProfilerConfig::to_sink(sink.clone()))
                } else {
                    ExecOptions::profiled(ProfilerConfig::to_sink(sink.clone()))
                };
                opts.metrics = metrics_for_query;
                let interp = Interpreter::new(catalog_for_query);
                let out = interp
                    .execute(&plan_for_query, &opts)
                    .map_err(|e| e.to_string())?;
                sink.emitter()
                    .send_end_of_trace()
                    .map_err(|e| e.to_string())?;
                Ok(out.result.map(|r| r.rows()).unwrap_or(0))
                // `sink` (and with it the emitter) drops here, flushing
                // and closing an in-memory link.
            })
            .map_err(SessionError::from)?;

        let mut mon = Monitor {
            cfg,
            plan: &plan,
            local_dot: &dot_text,
            started,
            dot_buffer: String::new(),
            used_dot: None,
            scene: None,
            space: None,
            map: TraceDotMap::default(),
            trace_writer: TraceWriter::create(&cfg.trace_path).map_err(SessionError::from)?,
            events: Vec::new(),
            sample: SampleBuffer::new(cfg.sample_capacity),
            edt: EventDispatchThread::new(cfg.pacing_ms),
            threshold: cfg.threshold_usec.map(ThresholdColoring::new),
            progress: ProgressModel::new(&plan),
            last_states: HashMap::new(),
            saw_eot: false,
            lost_gaps: Vec::new(),
            garbled_lines: 0,
            dot_degraded: false,
            metrics: cfg.metrics.as_deref().map(SessionMetrics::new),
        };
        let deadline = Instant::now() + Duration::from_secs(120);

        // Live monitoring until end-of-trace (or the stream closes —
        // e.g. the final eot frames themselves were lost).
        while !mon.saw_eot {
            if Instant::now() > deadline {
                steth.stop();
                return Err(SessionError::new("online session timed out"));
            }
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(item) => mon.handle(item)?,
                Err(StreamRecvError::Timeout) => continue,
                Err(StreamRecvError::Closed) => break,
            }
        }

        // Join first: the emitter drops with the query thread, which
        // flushes delayed datagrams and closes an in-memory link so the
        // drain below sees every straggler and every gap report.
        let result_rows = query_thread
            .join()
            .map_err(|_| SessionError::new("query thread panicked"))?
            .map_err(SessionError::new)?;
        if chaos_link.is_none() {
            // Real UDP: give in-flight loopback datagrams a beat, then
            // stop the listener (which flushes reassembly buffers and
            // closes the ring).
            std::thread::sleep(Duration::from_millis(60));
            steth.stop();
        }
        // Grace drain: reordered stragglers, eot echoes, gap reports
        // from the end-of-stream flush.
        loop {
            if Instant::now() > deadline {
                break;
            }
            match rx.recv_timeout(Duration::from_millis(200)) {
                Ok(item) => mon.handle(item)?,
                Err(StreamRecvError::Timeout) => continue,
                Err(StreamRecvError::Closed) => break,
            }
        }
        steth.stop();

        mon.trace_writer.flush()?;
        // Dot stream never completed usably? Fall back to the local
        // compile so the session still renders.
        if mon.space.is_none() {
            mon.dot_degraded = true;
            mon.adopt_dot(String::new())?;
        }
        let synthesized_dones = mon.converge()?;

        let transport = steth.transport_stats();
        let chaos_report = chaos_link.as_ref().map(|l| l.report());
        let session_metrics = mon.metrics.clone();
        let Monitor {
            used_dot,
            scene,
            space,
            map,
            events,
            mut edt,
            threshold,
            progress,
            saw_eot: _,
            lost_gaps,
            garbled_lines,
            dot_degraded,
            sample,
            ..
        } = mon;
        let mut space = space.ok_or_else(|| SessionError::new("no dot file available"))?;
        let scene = scene.expect("scene set with space");
        // Drain the EDT so the final frame shows every landed color.
        let ops = edt.flush();
        for d in &ops {
            space.glyph_mut(d.op.glyph).color = d.op.color;
        }
        // Settle the gauges on the session's final state so a scrape
        // after the run reads the converged picture.
        if let Some(m) = &session_metrics {
            m.edt_queue_depth.set(edt.backlog() as f64);
            m.set_progress(&progress.snapshot());
        }

        let final_states = PairElision.analyse(&events);
        let threshold_states = threshold
            .map(|t| {
                events
                    .iter()
                    .map(|e| (e.pc, t.state(e.pc)))
                    .collect::<HashMap<_, _>>()
            })
            .unwrap_or_default();

        Ok(OnlineOutcome {
            plan,
            verify,
            dot_text: used_dot.unwrap_or(dot_text),
            scene,
            space,
            map,
            events,
            final_states,
            threshold_states,
            edt_stats: edt.stats,
            samples_dropped: sample.dropped(),
            result_rows,
            progress: progress.snapshot(),
            elapsed: started.elapsed(),
            transport,
            chaos_report,
            lost_gaps,
            garbled_lines,
            synthesized_dones,
            dot_degraded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stetho_engine::{Bat, TableDef};
    use stetho_mal::MalType;

    fn catalog_sized(n: i64) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.add_table(
            TableDef::new(
                "lineitem",
                vec![
                    (
                        "l_partkey".into(),
                        MalType::Int,
                        Bat::ints((0..n).map(|i| i % 10).collect()),
                    ),
                    (
                        "l_tax".into(),
                        MalType::Dbl,
                        Bat::dbls((0..n).map(|i| i as f64 * 0.001).collect()),
                    ),
                ],
            )
            .unwrap(),
        );
        Arc::new(c)
    }

    fn catalog() -> Arc<Catalog> {
        catalog_sized(500)
    }

    #[test]
    fn online_session_end_to_end() {
        let cfg = OnlineConfig {
            pacing_ms: 0, // drain immediately in tests
            ..Default::default()
        };
        let out = OnlineSession::run(
            catalog(),
            "select l_tax from lineitem where l_partkey = 1",
            &cfg,
        )
        .unwrap();
        assert_eq!(out.result_rows, 50);
        assert_eq!(out.events.len(), out.plan.len() * 2);
        assert_eq!(out.progress.done, out.plan.len(), "progress reads 100%");
        assert_eq!(out.progress.fraction, 1.0);
        assert!(!out.dot_text.is_empty());
        assert!(out.verify.is_clean(), "compiled plan verifies clean");
        assert_eq!(out.scene.nodes.len(), out.plan.len());
        assert!(out.edt_stats.dispatched > 0);
        assert!(!out.dot_degraded, "loopback UDP delivers the dot intact");
        assert_eq!(out.synthesized_dones, 0);
        assert_eq!(out.transport.lost, 0);
        assert!(out.transport.received > 0, "framed transport counts frames");
        // Trace and dot files were written by the monitor.
        assert!(cfg.trace_path.exists());
        assert!(cfg.dot_path.exists());
        std::fs::remove_file(&cfg.trace_path).ok();
        std::fs::remove_file(&cfg.dot_path).ok();
    }

    #[test]
    fn online_parallel_with_mitosis() {
        let cfg = OnlineConfig {
            partitions: 4,
            workers: 4,
            pacing_ms: 0,
            ..Default::default()
        };
        let out = OnlineSession::run(
            catalog_sized(200_000),
            "select l_tax from lineitem where l_partkey = 3",
            &cfg,
        )
        .unwrap();
        assert_eq!(out.result_rows, 20_000);
        // The mitosis plan is wide; all its instructions traced.
        assert!(out.plan.len() > 20);
        assert_eq!(out.events.len(), out.plan.len() * 2);
        let threads: std::collections::HashSet<usize> =
            out.events.iter().map(|e| e.thread).collect();
        assert!(threads.len() >= 2, "parallel execution visible in trace");
        std::fs::remove_file(&cfg.trace_path).ok();
        std::fs::remove_file(&cfg.dot_path).ok();
    }

    #[test]
    fn threshold_algorithm_runs_when_configured() {
        let cfg = OnlineConfig {
            threshold_usec: Some(0), // everything is "costly"
            pacing_ms: 0,
            ..Default::default()
        };
        let out =
            OnlineSession::run(catalog(), "select sum(l_tax) as s from lineitem", &cfg).unwrap();
        assert!(!out.threshold_states.is_empty());
        std::fs::remove_file(&cfg.trace_path).ok();
        std::fs::remove_file(&cfg.dot_path).ok();
    }

    #[test]
    fn no_glyph_stays_red_once_its_done_was_observed() {
        // Regression for the stale-RED bug: with a tiny sample window a
        // node colored RED in one round elides (or slides out of the
        // window) in a later round, and the old `changes()` path never
        // emitted the revert — the glyph stayed RED on the final frame
        // even though its `done` was in the trace.
        let cfg = OnlineConfig {
            pacing_ms: 0,
            sample_capacity: 8,
            ..Default::default()
        };
        let out = OnlineSession::run(
            catalog_sized(100_000),
            "select l_tax from lineitem where l_partkey = 2",
            &cfg,
        )
        .unwrap();
        // Every instruction completed on the wire.
        assert_eq!(out.events.len(), out.plan.len() * 2);
        for pc in 0..out.plan.len() {
            if let Some(g) = out.map.shape_of_pc(pc) {
                assert_ne!(
                    out.space.glyph(g).color,
                    stetho_zvtm::Color::RED,
                    "pc {pc} completed but its glyph is still RED"
                );
            }
        }
        std::fs::remove_file(&cfg.trace_path).ok();
        std::fs::remove_file(&cfg.dot_path).ok();
    }

    #[test]
    fn compile_errors_surface() {
        let cfg = OnlineConfig::default();
        let r = OnlineSession::run(catalog(), "select nothing from nowhere", &cfg);
        assert!(r.is_err());
    }

    #[test]
    fn chaos_free_link_matches_udp_behavior() {
        let cfg = OnlineConfig {
            pacing_ms: 0,
            chaos: Some(ChaosConfig::clean(11)),
            ..Default::default()
        };
        let out = OnlineSession::run(
            catalog(),
            "select l_tax from lineitem where l_partkey = 1",
            &cfg,
        )
        .unwrap();
        assert_eq!(out.result_rows, 50);
        assert_eq!(out.events.len(), out.plan.len() * 2);
        assert_eq!(out.progress.fraction, 1.0);
        assert!(!out.dot_degraded);
        assert_eq!(out.transport.lost, 0);
        assert_eq!(out.transport.duplicated, 0);
        assert_eq!(out.synthesized_dones, 0);
        std::fs::remove_file(&cfg.trace_path).ok();
        std::fs::remove_file(&cfg.dot_path).ok();
    }

    #[test]
    fn metrics_cover_the_whole_stack_under_chaos() {
        let registry = Arc::new(stetho_obsv::Registry::new());
        let cfg = OnlineConfig {
            pacing_ms: 0,
            partitions: 4,
            workers: 4,
            sample_capacity: 32,
            chaos: Some(ChaosConfig::hostile(42)),
            metrics: Some(Arc::clone(&registry)),
            ..Default::default()
        };
        let out = OnlineSession::run(
            catalog_sized(50_000),
            "select l_tax from lineitem where l_partkey = 1",
            &cfg,
        )
        .unwrap();
        let snap = registry.snapshot();
        // Engine scheduler: every instruction of the parallel run counted.
        assert_eq!(
            snap.counter_total("stetho_scheduler_executed_total"),
            out.plan.len() as u64
        );
        // Transport bridge mirrors the receiver's own counters exactly.
        assert_eq!(
            snap.counter_total("stetho_transport_lost_total"),
            out.transport.lost
        );
        assert_eq!(
            snap.counter_total("stetho_transport_received_total"),
            out.transport.received
        );
        // Sample-buffer loss rides along.
        assert_eq!(
            snap.counter_total("stetho_samples_dropped_total"),
            out.samples_dropped
        );
        // Session rounds ran and were timed.
        let rounds = snap.counter_total("stetho_edt_rounds_total");
        assert!(rounds > 0);
        let analyse = snap.family("stetho_session_analyse_usec").unwrap();
        match &analyse.samples[0].value {
            stetho_obsv::SampleValue::Histogram { count, .. } => {
                assert_eq!(*count, rounds, "every round observed once")
            }
            other => panic!("unexpected {other:?}"),
        }
        // Progress gauges settled on the converged picture.
        let fraction = snap.gauge_value("stetho_progress_fraction").unwrap();
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction out of range: {fraction}"
        );
        assert_eq!(fraction, 1.0, "hostile session still converges");
        assert_eq!(
            snap.gauge_value("stetho_progress_total"),
            Some(out.plan.len() as f64)
        );
        assert_eq!(snap.gauge_value("stetho_edt_queue_depth"), Some(0.0));
        // And the whole thing renders as a scrapeable exposition.
        let text = registry.render_text();
        for family in [
            "stetho_scheduler_executed_total",
            "stetho_transport_lost_total",
            "stetho_samples_dropped_total",
            "stetho_session_analyse_usec_bucket",
            "stetho_progress_fraction",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        std::fs::remove_file(&cfg.trace_path).ok();
        std::fs::remove_file(&cfg.dot_path).ok();
    }

    #[test]
    fn hostile_link_session_converges() {
        let cfg = OnlineConfig {
            pacing_ms: 0,
            chaos: Some(ChaosConfig::hostile(23)),
            ..Default::default()
        };
        let out = OnlineSession::run(
            catalog(),
            "select l_tax from lineitem where l_partkey = 1",
            &cfg,
        )
        .unwrap();
        assert_eq!(out.result_rows, 50, "the query itself is unaffected");
        // The animation converged: nothing is left RED, and progress
        // accounts for every instruction as done or lost.
        assert!(out.final_states.values().all(|c| *c != ColorState::Red));
        assert_eq!(out.progress.fraction, 1.0, "{:?}", out.progress);
        // The seeded schedule at 20/5/10/30 certainly corrupts a
        // 100+ frame stream somewhere.
        let t = out.transport;
        assert!(t.lost + t.duplicated + t.reordered + t.garbled > 0, "{t:?}");
        std::fs::remove_file(&cfg.trace_path).ok();
        std::fs::remove_file(&cfg.dot_path).ok();
    }
}
