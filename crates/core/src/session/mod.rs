//! Session workflows (§4).
//!
//! "The Stethoscope works in both online and offline mode. Both modes
//! share some fundamental steps, such as dot file parsing, conversion to
//! an in memory graph representation, and sequential reading of a trace
//! file."

pub mod multi;
pub mod offline;
pub mod online;
pub mod snapshot;

use std::fmt;

/// Errors from building or driving a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionError {
    /// Explanation.
    pub msg: String,
}

impl SessionError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        SessionError { msg: msg.into() }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session error: {}", self.msg)
    }
}

impl std::error::Error for SessionError {}

impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> Self {
        SessionError::new(format!("io: {e}"))
    }
}
