//! Offline mode (§4.1).
//!
//! "Offline mode needs access to a preexisting dot file and trace file.
//! Once the off-line mode is selected, and the initial dot file parsing
//! to graph structure creation stage is over, interactive analysis
//! begins."
//!
//! Loading runs the paper's full shared pipeline: the dot text is parsed,
//! laid out, written to SVG, and the SVG parsed back into the in-memory
//! scene graph the viewer navigates (§4: dot → svg → graph structure).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use stetho_dot::{parse_dot, Graph};
use stetho_layout::{layout, parse_svg, write_svg, LayoutOptions, SceneGraph};
use stetho_profiler::{FilterOptions, TraceEvent, TraceFile};
use stetho_zvtm::overview::{birdseye, duration_colors, trace_strip};
use stetho_zvtm::render::{render, render_svg_frame, Framebuffer, RenderOptions};
use stetho_zvtm::{Camera, Color, EventDispatchThread, VirtualSpace};

use crate::color::ColorState;
use crate::inspect::{tooltip, ToolTip};
use crate::mapping::TraceDotMap;
use crate::metrics::SessionMetrics;
use crate::replay::ReplayController;
use crate::session::SessionError;

/// An interactive offline analysis session.
pub struct OfflineSession {
    /// The parsed dot graph.
    pub graph: Graph,
    /// The laid-out scene (product of the dot → svg → graph pipeline).
    pub scene: SceneGraph,
    /// The glyph canvas.
    pub space: VirtualSpace,
    /// pc ↔ node ↔ glyph resolution.
    pub map: TraceDotMap,
    /// The replay engine.
    pub replay: ReplayController,
    /// The viewer camera.
    pub camera: Camera,
    /// The paced render queue.
    pub edt: EventDispatchThread,
    /// Virtual session clock (ms) driving the EDT.
    pub now_ms: u64,
    /// Self-observability registry, when attached via
    /// [`OfflineSession::with_metrics`].
    pub metrics: Option<Arc<stetho_obsv::Registry>>,
    last_states: HashMap<usize, ColorState>,
    instruments: Option<SessionMetrics>,
}

impl OfflineSession {
    /// Build a session from dot text and trace text.
    pub fn load_text(dot_text: &str, trace_text: &str) -> Result<Self, SessionError> {
        Self::load_filtered(dot_text, trace_text, &FilterOptions::all())
    }

    /// Build with a load-time event filter (§3 feature 4).
    pub fn load_filtered(
        dot_text: &str,
        trace_text: &str,
        filter: &FilterOptions,
    ) -> Result<Self, SessionError> {
        let graph = parse_dot(dot_text).map_err(|e| SessionError::new(format!("dot: {e}")))?;
        let mut events = Vec::new();
        for (i, line) in trace_text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let e = stetho_profiler::parse_event(line)
                .map_err(|e| SessionError::new(format!("trace line {}: {e}", i + 1)))?;
            if filter.accepts(&e) {
                events.push(e);
            }
        }
        Self::from_parts(graph, events)
    }

    /// Build from preexisting dot and trace files.
    pub fn load_files(
        dot_path: impl AsRef<Path>,
        trace_path: impl AsRef<Path>,
    ) -> Result<Self, SessionError> {
        let dot_text = std::fs::read_to_string(dot_path)?;
        let graph = parse_dot(&dot_text).map_err(|e| SessionError::new(format!("dot: {e}")))?;
        let events = TraceFile::new(trace_path.as_ref()).read()?;
        Self::from_parts(graph, events)
    }

    /// Build from an already-parsed graph and event list.
    pub fn from_parts(graph: Graph, events: Vec<TraceEvent>) -> Result<Self, SessionError> {
        // The shared pipeline: graph → layout → svg → parse → scene.
        let laid_out = layout(&graph, &LayoutOptions::default());
        let svg = write_svg(&laid_out);
        let scene = parse_svg(&svg).map_err(|e| SessionError::new(format!("svg: {e}")))?;
        let (space, node_glyphs) = VirtualSpace::from_scene(&scene);
        let mut map = TraceDotMap::from_scene(&scene);
        map.attach_glyphs(&node_glyphs);

        let mut camera = Camera::default();
        if !space.is_empty() {
            camera.fit(space.bounds(), 1280.0, 800.0, 1.05);
        }
        Ok(OfflineSession {
            graph,
            scene,
            space,
            map,
            replay: ReplayController::new(events),
            camera,
            edt: EventDispatchThread::paper_default(),
            now_ms: 0,
            metrics: None,
            last_states: HashMap::new(),
            instruments: None,
        })
    }

    /// Publish self-observability into `registry`: each replay round
    /// records its analyse latency against the EDT's pacing budget, and
    /// the EDT backlog is kept as a gauge.
    pub fn with_metrics(mut self, registry: Arc<stetho_obsv::Registry>) -> Self {
        self.instruments = Some(SessionMetrics::new(&registry));
        self.metrics = Some(registry);
        self
    }

    /// Step one event forward and propagate colors through the EDT.
    pub fn step(&mut self) -> bool {
        let advanced = self.replay.step_forward().is_some();
        self.sync_colors();
        advanced
    }

    /// Step one event backward.
    pub fn step_back(&mut self) {
        self.replay.step_backward();
        self.sync_colors();
    }

    /// Seek to an absolute event index.
    pub fn seek(&mut self, idx: usize) {
        self.replay.seek(idx);
        self.sync_colors();
    }

    /// Run the replay to the end.
    pub fn run_to_end(&mut self) {
        self.replay.seek(self.replay.len());
        self.sync_colors();
    }

    /// Advance the session clock, letting paced renders land on glyphs.
    pub fn advance_ms(&mut self, dt: u64) {
        self.now_ms += dt;
        self.edt.advance_into(self.now_ms, &mut self.space);
        if let Some(m) = &self.instruments {
            m.edt_queue_depth.set(self.edt.backlog() as f64);
        }
    }

    /// Recompute pair-elision colors over the applied prefix and queue
    /// changed nodes on the EDT.
    fn sync_colors(&mut self) {
        let round_started = Instant::now();
        let states = self.replay.current_colors();
        for (&pc, &state) in &states {
            if self.last_states.get(&pc) != Some(&state) {
                if let Some(glyph) = self.map.shape_of_pc(pc) {
                    self.edt.enqueue(glyph, state.fill(), self.now_ms);
                }
                self.last_states.insert(pc, state);
            }
        }
        // Nodes that dropped out of the window revert to default.
        let stale: Vec<usize> = self
            .last_states
            .keys()
            .filter(|pc| !states.contains_key(pc))
            .copied()
            .collect();
        for pc in stale {
            if let Some(glyph) = self.map.shape_of_pc(pc) {
                self.edt.enqueue(glyph, Color::DEFAULT_FILL, self.now_ms);
            }
            self.last_states.remove(&pc);
        }
        if let Some(m) = &self.instruments {
            m.record_round(
                round_started.elapsed().as_micros() as u64,
                self.edt.pacing_ms,
            );
            m.edt_queue_depth.set(self.edt.backlog() as f64);
        }
    }

    /// Current color state of a node.
    pub fn node_state(&self, pc: usize) -> ColorState {
        self.last_states
            .get(&pc)
            .copied()
            .unwrap_or(ColorState::Uncolored)
    }

    /// Tool-tip for a node (§3 feature 3).
    pub fn tooltip(&self, pc: usize) -> Option<ToolTip> {
        tooltip(&self.map, &self.replay, pc)
    }

    /// Verify the §3.3 contract between the loaded dot file and trace:
    /// every trace event's pc must map to a node whose label equals the
    /// event's stmt. Returns the pcs that violate it — non-empty means
    /// the dot and trace files belong to different plans.
    pub fn verify_contract(&self) -> Vec<usize> {
        let mut bad: Vec<usize> = self
            .replay
            .events()
            .iter()
            .filter(|e| !self.map.stmt_matches(e.pc, &e.stmt))
            .map(|e| e.pc)
            .collect();
        bad.sort_unstable();
        bad.dedup();
        bad
    }

    /// Hit-test a click in world coordinates and return the node's pc.
    pub fn click(&self, wx: f64, wy: f64) -> Option<usize> {
        let idx = self.scene.hit_test(wx, wy)?;
        stetho_dot::plan_conv::node_name_to_pc(&self.scene.nodes[idx].name)
    }

    /// Animate-less jump of the camera onto a node (navigation).
    pub fn focus_node(&mut self, pc: usize) -> bool {
        let Some(idx) = self.map.node_of_pc(pc) else {
            return false;
        };
        let n = &self.scene.nodes[idx];
        self.camera.cx = n.x;
        self.camera.cy = n.y;
        self.camera.altitude = 0.0;
        true
    }

    /// Render the current display window as SVG (Figure 4's frame).
    pub fn render_frame_svg(&self) -> String {
        render_svg_frame(&self.space)
    }

    /// Rasterise the current viewport.
    pub fn render_frame(&self, width: usize, height: usize) -> Framebuffer {
        render(
            &self.space,
            &self.camera,
            width,
            height,
            &RenderOptions::default(),
        )
    }

    /// Birds-eye thumbnail of the whole plan (§5).
    pub fn birdseye(&self, width: usize, height: usize) -> Framebuffer {
        birdseye(&self.space, width, height)
    }

    /// Birds-eye strip of the whole trace, colored by duration (§5
    /// "sequence of instruction execution clustering").
    pub fn trace_overview(&self, width: usize, height: usize) -> Framebuffer {
        let durations: Vec<u64> = self
            .replay
            .events()
            .iter()
            .filter(|e| e.status == stetho_profiler::EventStatus::Done)
            .map(|e| e.usec)
            .collect();
        trace_strip(&duration_colors(&durations), width, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stetho_profiler::format_event;

    fn dot_text() -> String {
        r#"digraph p {
            n0 [label="X_0 := sql.mvc();"];
            n1 [label="X_1 := sql.tid(X_0);"];
            n2 [label="X_2 := algebra.select(X_1);"];
            n3 [label="X_3 := algebra.projection(X_2);"];
            n0 -> n1; n1 -> n2; n2 -> n3;
        }"#
        .to_string()
    }

    fn trace_text() -> String {
        let mut lines = Vec::new();
        let stmts = [
            "X_0 := sql.mvc();",
            "X_1 := sql.tid(X_0);",
            "X_2 := algebra.select(X_1);",
            "X_3 := algebra.projection(X_2);",
        ];
        let mut seq = 0;
        for (pc, stmt) in stmts.iter().enumerate() {
            let base = pc as u64 * 100;
            lines.push(format_event(&TraceEvent::start(
                seq, pc, 0, base, 100, *stmt,
            )));
            seq += 1;
            lines.push(format_event(&TraceEvent::done(
                seq,
                pc,
                0,
                base + 50,
                50,
                120,
                *stmt,
            )));
            seq += 1;
        }
        lines.join("\n")
    }

    #[test]
    fn load_runs_full_pipeline() {
        let s = OfflineSession::load_text(&dot_text(), &trace_text()).unwrap();
        assert_eq!(s.scene.nodes.len(), 4);
        assert_eq!(s.map.len(), 4);
        assert_eq!(s.replay.len(), 8);
        // Space has shape+text per node plus 3 edges.
        assert_eq!(s.space.len(), 4 * 2 + 3);
    }

    #[test]
    fn stepping_queues_colors_and_edt_paces_them() {
        let mut s = OfflineSession::load_text(&dot_text(), &trace_text()).unwrap();
        // Apply 3 events: start0, done0, start1 → pc0 elided/green-ish,
        // pc1 pending (last event), nothing yet rendered on glyphs.
        s.step();
        s.step();
        s.step();
        assert!(s.edt.backlog() > 0 || s.edt.stats.dispatched > 0);
        let glyph0 = s.map.shape_of_pc(0).unwrap();
        // Colors land only as the clock advances.
        s.advance_ms(1);
        let _ = s.space.glyph(glyph0).color;
        s.advance_ms(10_000);
        assert_eq!(s.edt.backlog(), 0, "clock advance drains the queue");
    }

    #[test]
    fn full_replay_marks_all_progress() {
        let mut s = OfflineSession::load_text(&dot_text(), &trace_text()).unwrap();
        s.run_to_end();
        assert!(s.replay.at_end());
        for pc in 0..4 {
            assert!(!s.replay.node(pc).running());
            assert_eq!(s.replay.node(pc).dones, 1);
        }
    }

    #[test]
    fn tooltips_and_clicks() {
        let mut s = OfflineSession::load_text(&dot_text(), &trace_text()).unwrap();
        s.seek(3);
        let tip = s.tooltip(1).unwrap();
        assert!(tip.stmt.contains("sql.tid"));
        // Click on node n2's coordinates.
        let n2 = &s.scene.nodes[2];
        assert_eq!(s.click(n2.x, n2.y), Some(2));
        assert_eq!(s.click(-100.0, -100.0), None);
    }

    #[test]
    fn focus_and_render() {
        let mut s = OfflineSession::load_text(&dot_text(), &trace_text()).unwrap();
        assert!(s.focus_node(2));
        assert!(!s.focus_node(99));
        let svg = s.render_frame_svg();
        assert!(svg.contains("algebra.select"));
        let fb = s.render_frame(200, 150);
        assert_eq!(fb.width, 200);
        let bird = s.birdseye(64, 48);
        assert_eq!(bird.width, 64);
        let strip = s.trace_overview(32, 4);
        assert_eq!(strip.width, 32);
    }

    #[test]
    fn filter_drops_events_at_load() {
        let filter = FilterOptions::all().with_module("algebra");
        let s = OfflineSession::load_filtered(&dot_text(), &trace_text(), &filter).unwrap();
        assert_eq!(
            s.replay.len(),
            4,
            "only the two algebra instructions remain"
        );
    }

    #[test]
    fn load_files_round_trip() {
        let dir = std::env::temp_dir();
        let dot_path = dir.join(format!("stetho_off_{}.dot", std::process::id()));
        let trace_path = dir.join(format!("stetho_off_{}.trace", std::process::id()));
        std::fs::write(&dot_path, dot_text()).unwrap();
        std::fs::write(&trace_path, trace_text()).unwrap();
        let s = OfflineSession::load_files(&dot_path, &trace_path).unwrap();
        assert_eq!(s.replay.len(), 8);
        std::fs::remove_file(dot_path).ok();
        std::fs::remove_file(trace_path).ok();
    }

    #[test]
    fn metrics_track_replay_rounds() {
        let registry = Arc::new(stetho_obsv::Registry::new());
        let mut s = OfflineSession::load_text(&dot_text(), &trace_text())
            .unwrap()
            .with_metrics(Arc::clone(&registry));
        s.run_to_end();
        s.advance_ms(10_000);
        let snap = registry.snapshot();
        assert!(snap.counter_total("stetho_edt_rounds_total") > 0);
        assert_eq!(
            snap.gauge_value("stetho_edt_queue_depth"),
            Some(0.0),
            "clock advance drained the queue"
        );
        assert!(snap.family("stetho_session_analyse_usec").is_some());
    }

    #[test]
    fn bad_inputs_error() {
        assert!(OfflineSession::load_text("not dot", "").is_err());
        assert!(OfflineSession::load_text(&dot_text(), "garbage line").is_err());
    }

    #[test]
    fn stmt_contract_holds_between_trace_and_dot() {
        let s = OfflineSession::load_text(&dot_text(), &trace_text()).unwrap();
        for e in s.replay.events() {
            assert!(
                s.map.stmt_matches(e.pc, &e.stmt),
                "trace stmt must equal dot label for pc {}",
                e.pc
            );
        }
    }
}
