//! Session-level self-observability instruments.
//!
//! The paper's demo is itself a monitoring tool; this module lets the
//! monitor monitor *itself*: per-round analyse latency against the
//! 150 ms pacing budget (§4.1 "the visual updates are paced"), EDT
//! backlog, sampling loss, live progress gauges, and a bridge that
//! mirrors the receive path's [`TransportCounters`] into a
//! [`stetho_obsv::Registry`] at snapshot time.
//!
//! All handles are cloned `Arc`s over atomics, so recording on the
//! monitor's per-event path is lock-free; the only locked work happens
//! at registration and scrape time.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use stetho_obsv::{Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS_USEC};
use stetho_profiler::reassembly::TransportCounters;

use crate::progress::ProgressSnapshot;

/// Instruments one session publishes into a registry.
///
/// Registration is idempotent per metric name, so several sequential
/// sessions (or a session restarted after chaos) can share one
/// long-lived registry and keep accumulating.
#[derive(Debug, Clone)]
pub struct SessionMetrics {
    /// `stetho_session_analyse_usec` — per-round run-time analysis
    /// latency (sample-buffer snapshot + pair-elision + EDT enqueue).
    pub analyse_usec: Histogram,
    /// `stetho_edt_rounds_total` — analyse/dispatch rounds run.
    pub edt_rounds: Counter,
    /// `stetho_edt_pacing_violations_total` — rounds whose analysis
    /// overran the configured pacing budget.
    pub pacing_violations: Counter,
    /// `stetho_edt_queue_depth` — color operations waiting on the EDT.
    pub edt_queue_depth: Gauge,
    /// `stetho_samples_dropped_total` — events evicted from the sample
    /// window (mirrors the buffer's lifetime count).
    pub samples_dropped: Counter,
    progress_fraction: Gauge,
    progress_done: Gauge,
    progress_running: Gauge,
    progress_lost: Gauge,
    progress_total: Gauge,
}

impl SessionMetrics {
    /// Register (or re-attach to) the session instruments.
    pub fn new(registry: &Registry) -> Self {
        SessionMetrics {
            analyse_usec: registry.histogram(
                "stetho_session_analyse_usec",
                "Per-round run-time analysis latency in microseconds",
                &LATENCY_BUCKETS_USEC,
            ),
            edt_rounds: registry.counter(
                "stetho_edt_rounds_total",
                "Analyse/dispatch rounds run by the monitor",
            ),
            pacing_violations: registry.counter(
                "stetho_edt_pacing_violations_total",
                "Rounds whose analysis overran the EDT pacing budget",
            ),
            edt_queue_depth: registry.gauge(
                "stetho_edt_queue_depth",
                "Color operations queued on the event dispatch thread",
            ),
            samples_dropped: registry.counter(
                "stetho_samples_dropped_total",
                "Trace events evicted from the bounded sample window",
            ),
            progress_fraction: registry.gauge(
                "stetho_progress_fraction",
                "Fraction of the plan settled (done or lost), 0..=1",
            ),
            progress_done: registry.gauge("stetho_progress_done", "Instructions completed"),
            progress_running: registry.gauge(
                "stetho_progress_running",
                "Instructions currently executing",
            ),
            progress_lost: registry.gauge(
                "stetho_progress_lost",
                "Instructions written off to transport gaps",
            ),
            progress_total: registry.gauge("stetho_progress_total", "Instructions in the plan"),
        }
    }

    /// Record one analyse/dispatch round. `analyse_usec` is the round's
    /// measured latency (the caller owns the clock); a round counts as a
    /// pacing violation when it overran `pacing_budget_ms` (a zero
    /// budget — tests that drain immediately — never violates).
    pub fn record_round(&self, analyse_usec: u64, pacing_budget_ms: u64) {
        self.edt_rounds.inc();
        self.analyse_usec.observe(analyse_usec as f64);
        if pacing_budget_ms > 0 && analyse_usec > pacing_budget_ms * 1000 {
            self.pacing_violations.inc();
        }
    }

    /// Mirror a progress snapshot into the gauges.
    pub fn set_progress(&self, s: &ProgressSnapshot) {
        self.progress_fraction.set(s.fraction);
        self.progress_done.set(s.done as f64);
        self.progress_running.set(s.running as f64);
        self.progress_lost.set(s.lost as f64);
        self.progress_total.set(s.total as f64);
    }
}

/// Mirror the receive path's transport counters into `registry` as
/// `stetho_transport_*_total` families, refreshed by a collector at
/// every snapshot. The bridge holds only the shared atomic block, so it
/// stays valid after the session (and its stethoscope thread) ends.
pub fn bridge_transport(registry: &Registry, counters: Arc<TransportCounters>) {
    let received = registry.counter(
        "stetho_transport_received_total",
        "Framed datagrams whose header decoded",
    );
    let reordered = registry.counter(
        "stetho_transport_reordered_total",
        "Frames that arrived after a higher sequence number",
    );
    let duplicated = registry.counter(
        "stetho_transport_duplicated_total",
        "Frames whose sequence number was already seen",
    );
    let lost = registry.counter(
        "stetho_transport_lost_total",
        "Datagrams covered by emitted Lost gaps",
    );
    let dropped_backpressure = registry.counter(
        "stetho_transport_dropped_backpressure_total",
        "Stream items evicted by the bounded ring under backpressure",
    );
    let garbled = registry.counter(
        "stetho_transport_garbled_total",
        "Lines or frames that could not be understood",
    );
    registry.register_collector(move || {
        received.set(counters.received.load(Ordering::Relaxed));
        reordered.set(counters.reordered.load(Ordering::Relaxed));
        duplicated.set(counters.duplicated.load(Ordering::Relaxed));
        lost.set(counters.lost.load(Ordering::Relaxed));
        dropped_backpressure.set(counters.dropped_backpressure.load(Ordering::Relaxed));
        garbled.set(counters.garbled.load(Ordering::Relaxed));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_and_pacing_violations() {
        let r = Registry::new();
        let m = SessionMetrics::new(&r);
        m.record_round(1_000, 150); // within the 150 ms budget
        m.record_round(200_000, 150); // overran
        m.record_round(500_000, 0); // zero budget never violates
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("stetho_edt_rounds_total"), 3);
        assert_eq!(snap.counter_total("stetho_edt_pacing_violations_total"), 1);
        let fam = snap.family("stetho_session_analyse_usec").unwrap();
        assert_eq!(fam.samples.len(), 1);
    }

    #[test]
    fn progress_gauges_mirror_snapshot() {
        let r = Registry::new();
        let m = SessionMetrics::new(&r);
        m.set_progress(&ProgressSnapshot {
            total: 8,
            done: 4,
            running: 2,
            lost: 1,
            fraction: 0.625,
            completed_depth: 1,
            depth_levels: 3,
            clk: 99,
            eta_usec: None,
        });
        let snap = r.snapshot();
        assert_eq!(snap.gauge_value("stetho_progress_fraction"), Some(0.625));
        assert_eq!(snap.gauge_value("stetho_progress_done"), Some(4.0));
        assert_eq!(snap.gauge_value("stetho_progress_total"), Some(8.0));
    }

    #[test]
    fn transport_bridge_tracks_live_counters() {
        let r = Registry::new();
        let counters = Arc::new(TransportCounters::default());
        bridge_transport(&r, Arc::clone(&counters));
        counters.lost.fetch_add(3, Ordering::Relaxed);
        counters.received.fetch_add(10, Ordering::Relaxed);
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("stetho_transport_lost_total"), 3);
        assert_eq!(snap.counter_total("stetho_transport_received_total"), 10);
        // Later increments show up on the next snapshot.
        counters.lost.fetch_add(1, Ordering::Relaxed);
        assert_eq!(r.snapshot().counter_total("stetho_transport_lost_total"), 4);
    }

    #[test]
    fn session_metrics_reattach_to_existing_registry() {
        let r = Registry::new();
        let a = SessionMetrics::new(&r);
        a.edt_rounds.inc();
        let b = SessionMetrics::new(&r);
        b.edt_rounds.inc();
        assert_eq!(
            r.snapshot().counter_total("stetho_edt_rounds_total"),
            2,
            "sequential sessions share instruments"
        );
    }
}
