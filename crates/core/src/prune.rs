//! Selective pruning of administrative instructions — the §6 planned
//! feature "selective pruning of MAL plan to remove unimportant
//! administrative instructions", implemented over the dot graph so the
//! viewer can toggle it without recompiling the plan.
//!
//! Pruned nodes are removed and their dataflow bypassed: every
//! predecessor gets an edge to every successor, so reachability through
//! the pruned node is preserved.

use std::collections::{HashMap, HashSet};

use stetho_dot::{Graph, NodeId};

/// Is a node label an administrative statement?
pub fn is_administrative_label(label: &str) -> bool {
    let body = match label.find(":=") {
        Some(i) => label[i + 2..].trim_start(),
        None => label.trim_start(),
    };
    [
        "language.pass",
        "language.dataflow",
        "querylog.define",
        "mal.end",
        "mal.function",
    ]
    .iter()
    .any(|p| body.starts_with(p))
}

/// Remove administrative nodes from a plan graph, bypassing their edges.
/// Returns the pruned graph and the names of removed nodes.
pub fn prune_administrative(graph: &Graph) -> (Graph, Vec<String>) {
    let keep: Vec<bool> = graph
        .nodes()
        .iter()
        .map(|n| {
            let label = n.attrs.get("label").map(String::as_str).unwrap_or(&n.name);
            !is_administrative_label(label)
        })
        .collect();

    let mut pruned = Graph::new(graph.name.clone());
    pruned.attrs = graph.attrs.clone();
    let mut remap: HashMap<usize, NodeId> = HashMap::new();
    let mut removed = Vec::new();
    for (i, n) in graph.nodes().iter().enumerate() {
        if keep[i] {
            let id = pruned
                .add_node(n.name.clone(), n.attrs.clone())
                .expect("unique names preserved");
            remap.insert(i, id);
        } else {
            removed.push(n.name.clone());
        }
    }

    // For each kept node, follow edges through pruned nodes to find the
    // kept successors.
    let succs = graph.successors();
    let mut added: HashSet<(usize, usize)> = HashSet::new();
    for (i, n_keep) in keep.iter().enumerate() {
        if !n_keep {
            continue;
        }
        // BFS through pruned nodes only.
        let mut stack: Vec<usize> = succs[i].iter().map(|s| s.0).collect();
        let mut seen: HashSet<usize> = HashSet::new();
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            if keep[t] {
                if t != i && added.insert((i, t)) {
                    pruned
                        .add_edge(remap[&i], remap[&t], HashMap::new())
                        .expect("nodes exist");
                }
            } else {
                stack.extend(succs[t].iter().map(|s| s.0));
            }
        }
    }
    // Preserve original edge attributes where the edge survived intact.
    for e in graph.edges() {
        if keep[e.from.0] && keep[e.to.0] {
            // Replace the attribute-less bypass copy with the original.
            if let Some(edge) = pruned
                .edges()
                .iter()
                .position(|pe| pe.from == remap[&e.from.0] && pe.to == remap[&e.to.0])
            {
                // Safe: positions stay valid, we only enrich attributes.
                let (from, to) = (remap[&e.from.0], remap[&e.to.0]);
                let attrs = e.attrs.clone();
                let _ = edge;
                replace_edge_attrs(&mut pruned, from, to, attrs);
            }
        }
    }
    (pruned, removed)
}

fn replace_edge_attrs(g: &mut Graph, from: NodeId, to: NodeId, attrs: HashMap<String, String>) {
    // Graph has no direct edge-attr mutation; rebuild the edge list via a
    // copy-on-write pass only when attributes are non-empty.
    if attrs.is_empty() {
        return;
    }
    let mut rebuilt = Graph::new(g.name.clone());
    rebuilt.attrs = g.attrs.clone();
    for n in g.nodes() {
        rebuilt
            .add_node(n.name.clone(), n.attrs.clone())
            .expect("names unique");
    }
    for e in g.edges() {
        let a = if e.from == from && e.to == to {
            attrs.clone()
        } else {
            e.attrs.clone()
        };
        rebuilt.add_edge(e.from, e.to, a).expect("nodes exist");
    }
    *g = rebuilt;
}

#[cfg(test)]
mod tests {
    use super::*;
    use stetho_dot::parse_dot;

    const DOT: &str = r#"digraph p {
        n0 [label="X_0 := sql.mvc();"];
        n1 [label="language.pass(X_0);"];
        n2 [label="X_2 := sql.tid(X_0);"];
        n3 [label="querylog.define(\"q\");"];
        n4 [label="X_4 := algebra.select(X_2);"];
        n0 -> n1; n1 -> n2; n2 -> n4; n0 -> n3;
    }"#;

    #[test]
    fn administrative_labels_detected() {
        assert!(is_administrative_label("language.pass(X_0);"));
        assert!(is_administrative_label("querylog.define(\"q\");"));
        assert!(!is_administrative_label("X_2 := algebra.select(X_1);"));
        assert!(!is_administrative_label("X := mylanguage.passthing();"));
    }

    #[test]
    fn prune_removes_and_bypasses() {
        let g = parse_dot(DOT).unwrap();
        let (pruned, removed) = prune_administrative(&g);
        assert_eq!(removed.len(), 2);
        assert!(removed.contains(&"n1".to_string()));
        assert!(removed.contains(&"n3".to_string()));
        assert_eq!(pruned.node_count(), 3);
        // n0 -> n1 -> n2 must become n0 -> n2.
        let n0 = pruned.node_by_name("n0").unwrap();
        let n2 = pruned.node_by_name("n2").unwrap();
        assert!(
            pruned.edges().iter().any(|e| e.from == n0 && e.to == n2),
            "bypass edge n0 -> n2 missing"
        );
        // Original direct edge n2 -> n4 survives.
        let n4 = pruned.node_by_name("n4").unwrap();
        assert!(pruned.edges().iter().any(|e| e.from == n2 && e.to == n4));
    }

    #[test]
    fn chain_of_pruned_nodes_bypassed() {
        let g = parse_dot(
            r#"digraph p {
                n0 [label="X_0 := sql.mvc();"];
                n1 [label="language.pass(X_0);"];
                n2 [label="language.pass(X_0);"];
                n3 [label="X_3 := sql.tid(X_0);"];
                n0 -> n1; n1 -> n2; n2 -> n3;
            }"#,
        )
        .unwrap();
        let (pruned, removed) = prune_administrative(&g);
        assert_eq!(removed.len(), 2);
        let n0 = pruned.node_by_name("n0").unwrap();
        let n3 = pruned.node_by_name("n3").unwrap();
        assert!(pruned.edges().iter().any(|e| e.from == n0 && e.to == n3));
    }

    #[test]
    fn graph_without_admin_unchanged() {
        let g = parse_dot(
            "digraph p { n0 [label=\"X_0 := sql.mvc();\"]; n1 [label=\"X_1 := sql.tid(X_0);\"]; n0 -> n1; }",
        )
        .unwrap();
        let (pruned, removed) = prune_administrative(&g);
        assert!(removed.is_empty());
        assert_eq!(pruned.node_count(), 2);
        assert_eq!(pruned.edge_count(), 1);
    }

    #[test]
    fn edge_labels_preserved_on_surviving_edges() {
        let g = parse_dot(
            "digraph p { n0 [label=\"X_0 := sql.mvc();\"]; n1 [label=\"X_1 := sql.tid(X_0);\"]; n0 -> n1 [label=\"X_0\"]; }",
        )
        .unwrap();
        let (pruned, _) = prune_administrative(&g);
        assert_eq!(
            pruned.edges()[0].attrs.get("label").map(String::as_str),
            Some("X_0")
        );
    }
}
