//! Scripted interaction — deterministic "demo driver".
//!
//! The original demo is a human clicking; §5 lists the interactions:
//! step-by-step walk-through, fast-forward/rewind/pause, coloring
//! between states, birds-eye views, and "animation effects such as
//! change of zoom level, color, and transition time between highlights
//! of nodes". [`InteractionScript`] encodes such a demo as data and
//! replays it against an [`OfflineSession`], advancing a virtual clock,
//! so whole demo walkthroughs are testable and benchmarkable.

use stetho_zvtm::anim::{Animator, CameraSlide, Easing};

use crate::session::offline::OfflineSession;

/// One scripted interaction.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Apply the next trace event.
    Step,
    /// Apply the previous trace event.
    StepBack,
    /// Jump to an absolute event index.
    Seek(usize),
    /// Play at a rate for some virtual milliseconds.
    Play {
        /// Trace-time multiplier.
        rate: f64,
        /// Wall milliseconds to advance while playing.
        for_ms: u64,
    },
    /// Pause playback.
    Pause,
    /// Click at world coordinates (hit-tests a node, records its pc).
    Click {
        /// World x.
        x: f64,
        /// World y.
        y: f64,
    },
    /// Animated camera transition onto a node over `ms` milliseconds.
    FocusAnimated {
        /// Target node.
        pc: usize,
        /// Transition time (the §5 "transition time between highlights").
        ms: u64,
    },
    /// Let the session clock run (EDT dispatch + animations).
    Wait(u64),
    /// Record an SVG snapshot of the current frame.
    Snapshot,
}

/// The outcome of running a script.
#[derive(Debug, Default)]
pub struct ScriptLog {
    /// pcs hit by Click actions, in order (None = clicked empty canvas).
    pub clicks: Vec<Option<usize>>,
    /// SVG frames captured by Snapshot actions.
    pub snapshots: Vec<String>,
    /// Total virtual time advanced (ms).
    pub elapsed_ms: u64,
    /// Camera poses after each FocusAnimated, as (cx, cy, altitude).
    pub focus_poses: Vec<(f64, f64, f64)>,
}

/// A replayable interaction script.
#[derive(Debug, Clone, Default)]
pub struct InteractionScript {
    /// The actions, in order.
    pub actions: Vec<Action>,
}

impl InteractionScript {
    /// Empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style append.
    pub fn then(mut self, a: Action) -> Self {
        self.actions.push(a);
        self
    }

    /// Execute against a session with a `tick_ms` animation/EDT tick.
    pub fn run(&self, session: &mut OfflineSession, tick_ms: u64) -> ScriptLog {
        let tick_ms = tick_ms.max(1);
        let mut log = ScriptLog::default();
        let mut animator = Animator::new();
        for action in &self.actions {
            match action {
                Action::Step => {
                    session.step();
                }
                Action::StepBack => session.step_back(),
                Action::Seek(idx) => session.seek(*idx),
                Action::Play { rate, for_ms } => {
                    session.replay.play(*rate);
                    let mut left = *for_ms;
                    while left > 0 {
                        let dt = tick_ms.min(left);
                        session.replay.tick(dt as f64 * 1000.0);
                        session.advance_ms(dt);
                        log.elapsed_ms += dt;
                        left -= dt;
                    }
                    // Colors for everything applied during playback.
                    session.seek(session.replay.position());
                }
                Action::Pause => session.replay.pause(),
                Action::Click { x, y } => log.clicks.push(session.click(*x, *y)),
                Action::FocusAnimated { pc, ms } => {
                    if let Some(idx) = session.map.node_of_pc(*pc) {
                        let n = &session.scene.nodes[idx];
                        animator.add_slide(CameraSlide::new(
                            &session.camera,
                            (n.x, n.y, 30.0),
                            *ms as f64,
                            Easing::EaseInOut,
                        ));
                        // Drive the slide with the session clock.
                        let mut left = *ms;
                        while left > 0 || animator.busy() {
                            let dt = tick_ms.min(left.max(1));
                            animator.step(dt as f64, &mut session.camera, &mut session.space);
                            session.advance_ms(dt);
                            log.elapsed_ms += dt;
                            left = left.saturating_sub(dt);
                            if left == 0 && !animator.busy() {
                                break;
                            }
                        }
                        log.focus_poses.push((
                            session.camera.cx,
                            session.camera.cy,
                            session.camera.altitude,
                        ));
                    }
                }
                Action::Wait(ms) => {
                    let mut left = *ms;
                    while left > 0 {
                        let dt = tick_ms.min(left);
                        session.advance_ms(dt);
                        log.elapsed_ms += dt;
                        left -= dt;
                    }
                }
                Action::Snapshot => log.snapshots.push(session.render_frame_svg()),
            }
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stetho_profiler::{format_event, TraceEvent};

    fn session() -> OfflineSession {
        let dot = r#"digraph p {
            n0 [label="X_0 := sql.mvc();"];
            n1 [label="X_1 := sql.tid(X_0);"];
            n2 [label="X_2 := algebra.select(X_1);"];
            n0 -> n1; n1 -> n2;
        }"#;
        let stmts = [
            "X_0 := sql.mvc();",
            "X_1 := sql.tid(X_0);",
            "X_2 := algebra.select(X_1);",
        ];
        let mut lines = Vec::new();
        let mut seq = 0;
        for (pc, stmt) in stmts.iter().enumerate() {
            let base = pc as u64 * 1000;
            lines.push(format_event(&TraceEvent::start(
                seq, pc, 0, base, 64, *stmt,
            )));
            seq += 1;
            lines.push(format_event(&TraceEvent::done(
                seq,
                pc,
                0,
                base + 500,
                500,
                64,
                *stmt,
            )));
            seq += 1;
        }
        OfflineSession::load_text(dot, &lines.join("\n")).unwrap()
    }

    #[test]
    fn scripted_walkthrough() {
        let mut s = session();
        let node1 = s.scene.nodes[1].clone();
        let script = InteractionScript::new()
            .then(Action::Step)
            .then(Action::Step)
            .then(Action::Snapshot)
            .then(Action::Click {
                x: node1.x,
                y: node1.y,
            })
            .then(Action::FocusAnimated { pc: 2, ms: 100 })
            .then(Action::Play {
                rate: 10.0,
                for_ms: 600,
            })
            .then(Action::Wait(10_000))
            .then(Action::Snapshot);
        let log = script.run(&mut s, 16);
        assert_eq!(log.clicks, vec![Some(1)]);
        assert_eq!(log.snapshots.len(), 2);
        assert!(log.elapsed_ms >= 10_000);
        // The animated focus landed the camera on node 2.
        let n2 = &s.scene.nodes[2];
        let (cx, cy, alt) = log.focus_poses[0];
        assert!((cx - n2.x).abs() < 1.0, "cx {cx} vs {}", n2.x);
        assert!((cy - n2.y).abs() < 1.0);
        assert!(alt <= 31.0);
        // Playback finished the trace.
        assert!(s.replay.at_end());
    }

    #[test]
    fn empty_script_is_noop() {
        let mut s = session();
        let log = InteractionScript::new().run(&mut s, 16);
        assert_eq!(log.elapsed_ms, 0);
        assert!(log.snapshots.is_empty());
        assert_eq!(s.replay.position(), 0);
    }

    #[test]
    fn step_back_and_seek_in_script() {
        let mut s = session();
        let script = InteractionScript::new()
            .then(Action::Seek(4))
            .then(Action::StepBack)
            .then(Action::StepBack);
        script.run(&mut s, 16);
        assert_eq!(s.replay.position(), 2);
    }

    #[test]
    fn focus_on_unknown_pc_is_skipped() {
        let mut s = session();
        let script = InteractionScript::new().then(Action::FocusAnimated { pc: 99, ms: 50 });
        let log = script.run(&mut s, 16);
        assert!(log.focus_poses.is_empty());
    }
}
