//! Keyboard/mouse navigation — "the zoom-able interface which allows
//! keyboard and mouse scroll based navigation with zooming ability on
//! individual nodes and edges in a graph" (§3.1).
//!
//! [`Navigator`] maps abstract input events onto camera operations using
//! ZGrviewer-like bindings: arrow keys pan by a fraction of the visible
//! region, Page-Up/Down zoom, Home fits the whole space, the mouse wheel
//! zooms at the cursor, and dragging pans.

use crate::camera::Camera;
use crate::space::VirtualSpace;

/// Keys the navigator understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Key {
    /// Pan left.
    Left,
    /// Pan right.
    Right,
    /// Pan up.
    Up,
    /// Pan down.
    Down,
    /// Zoom in.
    PageUp,
    /// Zoom out.
    PageDown,
    /// Fit the whole virtual space.
    Home,
}

/// One input event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InputEvent {
    /// Key press.
    Key(Key),
    /// Mouse wheel at a screen position; positive delta zooms in.
    Wheel {
        /// Scroll steps (positive = towards the user = zoom in).
        delta: f64,
        /// Cursor screen x.
        x: f64,
        /// Cursor screen y.
        y: f64,
    },
    /// Mouse drag by a screen-space delta (pans the canvas).
    Drag {
        /// Screen dx.
        dx: f64,
        /// Screen dy.
        dy: f64,
    },
}

/// Stateful input→camera mapper.
#[derive(Debug, Clone)]
pub struct Navigator {
    /// Viewport width (pixels).
    pub viewport_w: f64,
    /// Viewport height (pixels).
    pub viewport_h: f64,
    /// Pan step as a fraction of the visible region (arrow keys).
    pub pan_fraction: f64,
    /// Zoom factor per wheel step / page key (applied to altitude).
    pub zoom_step: f64,
}

impl Navigator {
    /// Navigator for a viewport.
    pub fn new(viewport_w: f64, viewport_h: f64) -> Self {
        Navigator {
            viewport_w,
            viewport_h,
            pan_fraction: 0.2,
            zoom_step: 0.8,
        }
    }

    /// Apply one event to the camera (and space, for Home/fit).
    pub fn apply(&self, event: InputEvent, camera: &mut Camera, space: &VirtualSpace) {
        match event {
            InputEvent::Key(key) => {
                let (x0, y0, x1, y1) = camera.visible_region(self.viewport_w, self.viewport_h);
                let (dx, dy) = ((x1 - x0) * self.pan_fraction, (y1 - y0) * self.pan_fraction);
                match key {
                    Key::Left => camera.pan(-dx, 0.0),
                    Key::Right => camera.pan(dx, 0.0),
                    Key::Up => camera.pan(0.0, -dy),
                    Key::Down => camera.pan(0.0, dy),
                    Key::PageUp => camera.zoom(self.zoom_step),
                    Key::PageDown => camera.zoom(1.0 / self.zoom_step),
                    Key::Home => {
                        if !space.is_empty() {
                            camera.fit(space.bounds(), self.viewport_w, self.viewport_h, 1.05);
                        }
                    }
                }
            }
            InputEvent::Wheel { delta, x, y } => {
                if delta == 0.0 {
                    return;
                }
                let factor = if delta > 0.0 {
                    self.zoom_step.powf(delta)
                } else {
                    (1.0 / self.zoom_step).powf(-delta)
                };
                camera.zoom_at(factor, x, y, self.viewport_w, self.viewport_h);
            }
            InputEvent::Drag { dx, dy } => {
                // Screen-space drag moves the world the opposite way.
                let s = camera.scale();
                camera.pan(-dx / s, -dy / s);
            }
        }
    }

    /// Apply a sequence of events.
    pub fn apply_all(
        &self,
        events: impl IntoIterator<Item = InputEvent>,
        camera: &mut Camera,
        space: &VirtualSpace,
    ) {
        for e in events {
            self.apply(e, camera, space);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glyph::{Color, GlyphKind};

    fn space() -> VirtualSpace {
        let mut s = VirtualSpace::new();
        s.add(
            GlyphKind::Shape { w: 40.0, h: 20.0 },
            0.0,
            0.0,
            Color::DEFAULT_FILL,
        );
        s.add(
            GlyphKind::Shape { w: 40.0, h: 20.0 },
            1000.0,
            500.0,
            Color::DEFAULT_FILL,
        );
        s
    }

    #[test]
    fn arrows_pan_proportionally() {
        let nav = Navigator::new(800.0, 600.0);
        let mut cam = Camera::at(0.0, 0.0, 100.0);
        let space = space();
        let cx0 = cam.cx;
        nav.apply(InputEvent::Key(Key::Right), &mut cam, &space);
        assert!(cam.cx > cx0);
        let dx_zoomed_out = cam.cx - cx0;
        // Zoomed out further, the same key pans a larger world distance.
        let mut far = Camera::at(0.0, 0.0, 500.0);
        nav.apply(InputEvent::Key(Key::Right), &mut far, &space);
        assert!(far.cx > dx_zoomed_out);
        // Opposite directions cancel.
        nav.apply(InputEvent::Key(Key::Left), &mut cam, &space);
        assert!((cam.cx - cx0).abs() < 1e-9);
    }

    #[test]
    fn page_keys_zoom() {
        let nav = Navigator::new(800.0, 600.0);
        let mut cam = Camera::at(0.0, 0.0, 100.0);
        let space = space();
        nav.apply(InputEvent::Key(Key::PageUp), &mut cam, &space);
        assert!(cam.altitude < 100.0, "PageUp zooms in");
        nav.apply(InputEvent::Key(Key::PageDown), &mut cam, &space);
        nav.apply(InputEvent::Key(Key::PageDown), &mut cam, &space);
        assert!(cam.altitude > 100.0, "PageDown zooms out");
    }

    #[test]
    fn home_fits_everything() {
        let nav = Navigator::new(800.0, 600.0);
        let mut cam = Camera::at(-999.0, -999.0, 3.0);
        let space = space();
        nav.apply(InputEvent::Key(Key::Home), &mut cam, &space);
        let r = cam.visible_region(800.0, 600.0);
        let (x0, y0, x1, y1) = space.bounds();
        assert!(r.0 <= x0 && r.1 <= y0 && r.2 >= x1 && r.3 >= y1);
    }

    #[test]
    fn wheel_zooms_at_cursor() {
        let nav = Navigator::new(800.0, 600.0);
        let mut cam = Camera::at(0.0, 0.0, 200.0);
        let space = space();
        let before = cam.unproject(100.0, 100.0, 800.0, 600.0);
        nav.apply(
            InputEvent::Wheel {
                delta: 2.0,
                x: 100.0,
                y: 100.0,
            },
            &mut cam,
            &space,
        );
        let after = cam.unproject(100.0, 100.0, 800.0, 600.0);
        assert!((before.0 - after.0).abs() < 1e-6, "cursor point pinned");
        assert!(cam.altitude < 200.0);
        // Zero delta is a no-op.
        let alt = cam.altitude;
        nav.apply(
            InputEvent::Wheel {
                delta: 0.0,
                x: 0.0,
                y: 0.0,
            },
            &mut cam,
            &space,
        );
        assert_eq!(cam.altitude, alt);
    }

    #[test]
    fn drag_pans_against_screen_motion() {
        let nav = Navigator::new(800.0, 600.0);
        let mut cam = Camera::at(0.0, 0.0, 0.0);
        let space = space();
        nav.apply(
            InputEvent::Drag {
                dx: 50.0,
                dy: -20.0,
            },
            &mut cam,
            &space,
        );
        assert_eq!((cam.cx, cam.cy), (-50.0, 20.0));
        // At half scale the same drag moves twice the world distance.
        let mut far = Camera::at(0.0, 0.0, 100.0); // scale 0.5
        nav.apply(InputEvent::Drag { dx: 50.0, dy: 0.0 }, &mut far, &space);
        assert!((far.cx + 100.0).abs() < 1e-9);
    }

    #[test]
    fn apply_all_sequences() {
        let nav = Navigator::new(800.0, 600.0);
        let mut cam = Camera::at(0.0, 0.0, 100.0);
        let space = space();
        nav.apply_all(
            [
                InputEvent::Key(Key::Home),
                InputEvent::Key(Key::PageUp),
                InputEvent::Drag { dx: 10.0, dy: 10.0 },
            ],
            &mut cam,
            &space,
        );
        assert!(cam.altitude > 0.0);
    }
}
