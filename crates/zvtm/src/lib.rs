//! # stetho-zvtm — a headless ZVTM/ZGrviewer substrate
//!
//! The original Stethoscope is built on ZGrviewer, "an open source tool
//! from the ZVTM tool set which provides interactive navigation
//! functionality in a graph structure ... the zoom-able interface which
//! allows keyboard and mouse scroll based navigation with zooming ability
//! on individual nodes and edges" (§3.1). ZVTM's model — *glyphs* in a
//! *virtual space* viewed through *cameras* — is reproduced here exactly,
//! minus Swing: rendering is headless (PPM pixel frames and SVG frames),
//! which makes every visual behaviour testable and benchmarkable.
//!
//! * [`glyph`] — Glyph objects: shape, text and edge glyphs, one each per
//!   graph element, exactly as §3.1 describes ZGrviewer's bookkeeping;
//! * [`space`] — the VirtualSpace canvas holding glyphs;
//! * [`camera`] — altitude-based zoom/pan cameras with projection math;
//! * [`anim`] — deterministic animation engine (camera slides, color
//!   fades, zoom transitions) driven by an explicit clock;
//! * [`lens`] — the fisheye lens ZGrviewer ships;
//! * [`edt`] — the Event-Dispatch-Thread queue: node recolor requests are
//!   queued and dispatched with a configurable pacing delay, reproducing
//!   the "delay of up-to 150ms between rendering of consecutive nodes"
//!   limitation the paper reports (§4.2.1);
//! * [`render`] — rasteriser (PPM) and SVG frame writer;
//! * [`overview`] — the birds-eye view of plan and trace (§5).

pub mod anim;
pub mod camera;
pub mod edt;
pub mod glyph;
pub mod input;
pub mod lens;
pub mod overview;
pub mod render;
pub mod space;

pub use anim::{Animator, CameraSlide, ColorFade};
pub use camera::Camera;
pub use edt::{EventDispatchThread, RenderOp};
pub use glyph::{Color, Glyph, GlyphId, GlyphKind};
pub use input::{InputEvent, Key, Navigator};
pub use lens::FisheyeLens;
pub use space::VirtualSpace;
