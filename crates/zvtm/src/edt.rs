//! The Event-Dispatch-Thread queue.
//!
//! "Coloring graph nodes in an online stream is a complex task due to
//! rendering limitations from the Java system. The Stethoscope uses the
//! Java Event Dispatch thread queuing framework for queuing up nodes to
//! render. This introduces a delay of up-to 150ms between rendering of
//! consecutive nodes." (§4.2.1)
//!
//! We reproduce this as an explicit queue with a configurable pacing
//! interval (default 150 ms) driven by a virtual clock: recolor requests
//! are enqueued as they arrive from the trace stream; [`advance`] hands
//! back the operations the "render thread" is allowed to perform by the
//! given time. Optional coalescing (replacing a queued recolor of the
//! same glyph by the newest request) is the ablation knob the
//! `ablate_edt_coalescing` bench measures.
//!
//! [`advance`]: EventDispatchThread::advance

use std::collections::VecDeque;

use crate::glyph::{Color, GlyphId};
use crate::space::VirtualSpace;

/// A queued recolor request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderOp {
    /// Glyph to recolor.
    pub glyph: GlyphId,
    /// New color.
    pub color: Color,
    /// Virtual time (ms) the request was enqueued.
    pub enqueued_at: u64,
}

/// A dispatched operation with its dispatch time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dispatched {
    /// The operation.
    pub op: RenderOp,
    /// Virtual time (ms) it was rendered.
    pub at: u64,
}

/// Queue statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdtStats {
    /// Requests enqueued.
    pub enqueued: u64,
    /// Operations actually rendered.
    pub dispatched: u64,
    /// Requests absorbed by coalescing.
    pub coalesced: u64,
    /// Peak queue depth.
    pub max_queue: usize,
}

/// The paced render queue.
#[derive(Debug)]
pub struct EventDispatchThread {
    queue: VecDeque<RenderOp>,
    /// Minimum ms between consecutive dispatches (paper: up to 150).
    pub pacing_ms: u64,
    /// Replace queued ops targeting the same glyph instead of appending.
    pub coalesce: bool,
    next_allowed: Option<u64>,
    /// Counters.
    pub stats: EdtStats,
}

/// The paper's reported pacing limit.
pub const PAPER_PACING_MS: u64 = 150;

impl EventDispatchThread {
    /// Queue with the given pacing; coalescing off (faithful baseline).
    pub fn new(pacing_ms: u64) -> Self {
        EventDispatchThread {
            queue: VecDeque::new(),
            pacing_ms,
            coalesce: false,
            next_allowed: None,
            stats: EdtStats::default(),
        }
    }

    /// The paper's configuration: 150 ms pacing.
    pub fn paper_default() -> Self {
        Self::new(PAPER_PACING_MS)
    }

    /// Enqueue a recolor request at virtual time `now`.
    pub fn enqueue(&mut self, glyph: GlyphId, color: Color, now: u64) {
        self.stats.enqueued += 1;
        if self.coalesce {
            if let Some(slot) = self.queue.iter_mut().find(|op| op.glyph == glyph) {
                slot.color = color;
                slot.enqueued_at = now;
                self.stats.coalesced += 1;
                return;
            }
        }
        self.queue.push_back(RenderOp {
            glyph,
            color,
            enqueued_at: now,
        });
        self.stats.max_queue = self.stats.max_queue.max(self.queue.len());
    }

    /// Pending request count.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Dispatch every operation the pacing allows by time `now`.
    pub fn advance(&mut self, now: u64) -> Vec<Dispatched> {
        let mut out = Vec::new();
        while let Some(front) = self.queue.front() {
            // An op cannot render before it was enqueued.
            let earliest = self.next_allowed.unwrap_or(0).max(front.enqueued_at);
            if earliest > now {
                break;
            }
            let op = self.queue.pop_front().expect("front checked");
            out.push(Dispatched { op, at: earliest });
            self.stats.dispatched += 1;
            self.next_allowed = Some(earliest + self.pacing_ms);
        }
        out
    }

    /// Advance and apply the dispatched colors to a virtual space.
    pub fn advance_into(&mut self, now: u64, space: &mut VirtualSpace) -> Vec<Dispatched> {
        let ops = self.advance(now);
        for d in &ops {
            space.glyph_mut(d.op.glyph).color = d.op.color;
        }
        ops
    }

    /// Drain everything regardless of time (used on session teardown);
    /// pacing gaps are still recorded between ops.
    pub fn flush(&mut self) -> Vec<Dispatched> {
        self.advance(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: usize) -> GlyphId {
        GlyphId(i)
    }

    #[test]
    fn dispatches_respect_pacing() {
        let mut edt = EventDispatchThread::new(150);
        for i in 0..5 {
            edt.enqueue(g(i), Color::RED, 0);
        }
        let ops = edt.advance(10_000);
        assert_eq!(ops.len(), 5);
        for pair in ops.windows(2) {
            assert!(
                pair[1].at - pair[0].at >= 150,
                "dispatch gap {} < pacing",
                pair[1].at - pair[0].at
            );
        }
    }

    #[test]
    fn nothing_dispatches_before_time() {
        let mut edt = EventDispatchThread::new(150);
        edt.enqueue(g(0), Color::RED, 0);
        edt.enqueue(g(1), Color::RED, 0);
        let ops = edt.advance(0);
        assert_eq!(ops.len(), 1, "first op renders immediately");
        let ops = edt.advance(149);
        assert!(ops.is_empty(), "second must wait out the pacing");
        let ops = edt.advance(150);
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn op_never_renders_before_enqueue_time() {
        let mut edt = EventDispatchThread::new(10);
        edt.enqueue(g(0), Color::RED, 500);
        let ops = edt.advance(400);
        assert!(ops.is_empty());
        let ops = edt.advance(500);
        assert_eq!(ops[0].at, 500);
    }

    #[test]
    fn zero_pacing_dispatches_all_at_once() {
        let mut edt = EventDispatchThread::new(0);
        for i in 0..100 {
            edt.enqueue(g(i), Color::GREEN, 0);
        }
        assert_eq!(edt.advance(0).len(), 100);
    }

    #[test]
    fn coalescing_merges_same_glyph() {
        let mut edt = EventDispatchThread::new(150);
        edt.coalesce = true;
        edt.enqueue(g(7), Color::RED, 0);
        edt.enqueue(g(7), Color::GREEN, 1);
        edt.enqueue(g(8), Color::RED, 2);
        assert_eq!(edt.backlog(), 2);
        let ops = edt.advance(10_000);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].op.color, Color::GREEN, "newest color wins");
        assert_eq!(edt.stats.coalesced, 1);
    }

    #[test]
    fn without_coalescing_all_ops_render() {
        let mut edt = EventDispatchThread::new(150);
        edt.enqueue(g(7), Color::RED, 0);
        edt.enqueue(g(7), Color::GREEN, 1);
        assert_eq!(edt.advance(10_000).len(), 2);
    }

    #[test]
    fn stats_track_queue_behaviour() {
        let mut edt = EventDispatchThread::new(150);
        for i in 0..4 {
            edt.enqueue(g(i), Color::RED, 0);
        }
        assert_eq!(edt.stats.enqueued, 4);
        assert_eq!(edt.stats.max_queue, 4);
        edt.advance(u64::MAX - 1000);
        assert_eq!(edt.stats.dispatched, 4);
    }

    #[test]
    fn advance_into_applies_colors() {
        use crate::glyph::GlyphKind;
        let mut space = VirtualSpace::new();
        let id = space.add(
            GlyphKind::Shape { w: 1.0, h: 1.0 },
            0.0,
            0.0,
            Color::DEFAULT_FILL,
        );
        let mut edt = EventDispatchThread::new(0);
        edt.enqueue(id, Color::RED, 0);
        edt.advance_into(0, &mut space);
        assert_eq!(space.glyph(id).color, Color::RED);
    }

    #[test]
    fn backlog_grows_when_stream_outruns_pacing() {
        // The situation §4.2 describes: a fast trace stream against a
        // 150ms render limit — the queue must absorb the burst.
        let mut edt = EventDispatchThread::paper_default();
        // 100 events arriving 1ms apart.
        for i in 0..100u64 {
            edt.enqueue(g(i as usize), Color::RED, i);
            edt.advance(i);
        }
        assert!(edt.backlog() > 90, "backlog {}", edt.backlog());
    }
}
