//! Glyphs — ZVTM's fundamental graphical objects.
//!
//! "Glyph is a structure representing a fundamental graphical object in
//! ZGrviewer. For example, consider a two node graph, with one undirected
//! edge between them. ... ZGrviewer maintains following objects, shape
//! (two objects), text (two objects), and edge (one object)." (§3.1)

/// RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red.
    pub r: u8,
    /// Green.
    pub g: u8,
    /// Blue.
    pub b: u8,
}

impl Color {
    /// Construct from components.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Self {
        Color { r, g, b }
    }

    /// The default node fill.
    pub const DEFAULT_FILL: Color = Color::rgb(0xf0, 0xf0, 0xf0);
    /// Executing (`start` seen): RED (§4.2.1).
    pub const RED: Color = Color::rgb(0xd0, 0x20, 0x20);
    /// Finished (`done` seen): GREEN (§4.2.1).
    pub const GREEN: Color = Color::rgb(0x20, 0xa0, 0x20);
    /// Edge stroke.
    pub const EDGE: Color = Color::rgb(0x55, 0x55, 0x55);
    /// White background.
    pub const WHITE: Color = Color::rgb(0xff, 0xff, 0xff);
    /// Black text.
    pub const BLACK: Color = Color::rgb(0x00, 0x00, 0x00);

    /// Linear interpolation between two colors (`t` in 0..=1).
    pub fn lerp(a: Color, b: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| (x as f64 + (y as f64 - x as f64) * t).round() as u8;
        Color::rgb(mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b))
    }

    /// CSS hex rendering.
    pub fn css(&self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

/// Identifier of a glyph inside one virtual space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlyphId(pub usize);

/// What kind of graphical object a glyph is.
#[derive(Debug, Clone, PartialEq)]
pub enum GlyphKind {
    /// Rectangular shape glyph (graph node box). `x`,`y` is the centre.
    Shape {
        /// Width.
        w: f64,
        /// Height.
        h: f64,
    },
    /// Text glyph anchored at the centre.
    Text {
        /// The string.
        content: String,
    },
    /// Edge glyph: polyline through the points (world coordinates).
    Edge {
        /// Bend points.
        points: Vec<(f64, f64)>,
    },
}

/// One glyph in a virtual space.
#[derive(Debug, Clone, PartialEq)]
pub struct Glyph {
    /// Identity within the owning space.
    pub id: GlyphId,
    /// Kind and geometry.
    pub kind: GlyphKind,
    /// Anchor x (centre) — unused for edges.
    pub x: f64,
    /// Anchor y (centre) — unused for edges.
    pub y: f64,
    /// Fill/stroke color.
    pub color: Color,
    /// Hidden glyphs are skipped by rendering and hit testing.
    pub visible: bool,
}

impl Glyph {
    /// World-space bounding box `(min_x, min_y, max_x, max_y)`.
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        match &self.kind {
            GlyphKind::Shape { w, h } => (
                self.x - w / 2.0,
                self.y - h / 2.0,
                self.x + w / 2.0,
                self.y + h / 2.0,
            ),
            GlyphKind::Text { content } => {
                let w = content.len() as f64 * 7.0;
                (
                    self.x - w / 2.0,
                    self.y - 6.0,
                    self.x + w / 2.0,
                    self.y + 6.0,
                )
            }
            GlyphKind::Edge { points } => {
                let mut b = (
                    f64::INFINITY,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::NEG_INFINITY,
                );
                for &(x, y) in points {
                    b.0 = b.0.min(x);
                    b.1 = b.1.min(y);
                    b.2 = b.2.max(x);
                    b.3 = b.3.max(y);
                }
                b
            }
        }
    }

    /// Hit test in world coordinates (shapes only; text/edges don't
    /// intercept clicks in ZGrviewer either).
    pub fn contains(&self, px: f64, py: f64) -> bool {
        match &self.kind {
            GlyphKind::Shape { .. } => {
                let (x0, y0, x1, y1) = self.bounds();
                px >= x0 && px <= x1 && py >= y0 && py <= y1
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_lerp_endpoints_and_midpoint() {
        assert_eq!(Color::lerp(Color::RED, Color::GREEN, 0.0), Color::RED);
        assert_eq!(Color::lerp(Color::RED, Color::GREEN, 1.0), Color::GREEN);
        let mid = Color::lerp(Color::rgb(0, 0, 0), Color::rgb(100, 200, 50), 0.5);
        assert_eq!(mid, Color::rgb(50, 100, 25));
        // Clamped outside the range.
        assert_eq!(Color::lerp(Color::RED, Color::GREEN, 2.0), Color::GREEN);
    }

    #[test]
    fn css_format() {
        assert_eq!(Color::rgb(0xd0, 0x20, 0x20).css(), "#d02020");
        assert_eq!(Color::WHITE.css(), "#ffffff");
    }

    #[test]
    fn shape_bounds_and_hit() {
        let g = Glyph {
            id: GlyphId(0),
            kind: GlyphKind::Shape { w: 40.0, h: 20.0 },
            x: 100.0,
            y: 50.0,
            color: Color::DEFAULT_FILL,
            visible: true,
        };
        assert_eq!(g.bounds(), (80.0, 40.0, 120.0, 60.0));
        assert!(g.contains(100.0, 50.0));
        assert!(g.contains(80.0, 40.0));
        assert!(!g.contains(79.0, 50.0));
    }

    #[test]
    fn edge_bounds() {
        let g = Glyph {
            id: GlyphId(1),
            kind: GlyphKind::Edge {
                points: vec![(0.0, 0.0), (10.0, 30.0), (-5.0, 15.0)],
            },
            x: 0.0,
            y: 0.0,
            color: Color::EDGE,
            visible: true,
        };
        assert_eq!(g.bounds(), (-5.0, 0.0, 10.0, 30.0));
        assert!(!g.contains(0.0, 0.0), "edges don't intercept clicks");
    }
}
