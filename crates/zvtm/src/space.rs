//! The virtual space — "a canvas on which graphs are drawn" (§3.1).

use stetho_layout::SceneGraph;

use crate::glyph::{Color, Glyph, GlyphId, GlyphKind};

/// A canvas of glyphs.
#[derive(Debug, Clone, Default)]
pub struct VirtualSpace {
    glyphs: Vec<Glyph>,
}

/// How a scene-graph node maps onto its glyphs, kept so the Stethoscope
/// core can recolor node `n<pc>` without searching.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeGlyphs {
    /// Dot node name (`n3`).
    pub name: String,
    /// The box shape glyph.
    pub shape: GlyphId,
    /// The label text glyph.
    pub text: GlyphId,
}

impl VirtualSpace {
    /// Empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a glyph; returns its id.
    pub fn add(&mut self, kind: GlyphKind, x: f64, y: f64, color: Color) -> GlyphId {
        let id = GlyphId(self.glyphs.len());
        self.glyphs.push(Glyph {
            id,
            kind,
            x,
            y,
            color,
            visible: true,
        });
        id
    }

    /// Glyph access.
    pub fn glyph(&self, id: GlyphId) -> &Glyph {
        &self.glyphs[id.0]
    }

    /// Mutable glyph access.
    pub fn glyph_mut(&mut self, id: GlyphId) -> &mut Glyph {
        &mut self.glyphs[id.0]
    }

    /// All glyphs in z-order (insertion order).
    pub fn glyphs(&self) -> &[Glyph] {
        &self.glyphs
    }

    /// Number of glyphs.
    pub fn len(&self) -> usize {
        self.glyphs.len()
    }

    /// True when no glyphs exist.
    pub fn is_empty(&self) -> bool {
        self.glyphs.is_empty()
    }

    /// World bounding box over visible glyphs.
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut b = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut first = true;
        for g in &self.glyphs {
            if !g.visible {
                continue;
            }
            let gb = g.bounds();
            if first {
                b = gb;
                first = false;
            } else {
                b.0 = b.0.min(gb.0);
                b.1 = b.1.min(gb.1);
                b.2 = b.2.max(gb.2);
                b.3 = b.3.max(gb.3);
            }
        }
        b
    }

    /// Topmost visible shape glyph containing the world point.
    pub fn pick(&self, x: f64, y: f64) -> Option<GlyphId> {
        self.glyphs
            .iter()
            .rev()
            .find(|g| g.visible && g.contains(x, y))
            .map(|g| g.id)
    }

    /// Build a virtual space from a laid-out scene graph: one edge glyph
    /// per edge (drawn first, under the nodes), then per node one shape
    /// glyph and one text glyph — the exact object bookkeeping §3.1
    /// attributes to ZGrviewer.
    pub fn from_scene(scene: &SceneGraph) -> (VirtualSpace, Vec<NodeGlyphs>) {
        let mut space = VirtualSpace::new();
        for e in &scene.edges {
            space.add(
                GlyphKind::Edge {
                    points: e.points.clone(),
                },
                0.0,
                0.0,
                Color::EDGE,
            );
        }
        let mut map = Vec::with_capacity(scene.nodes.len());
        for n in &scene.nodes {
            let shape = space.add(
                GlyphKind::Shape { w: n.w, h: n.h },
                n.x,
                n.y,
                Color::DEFAULT_FILL,
            );
            let text = space.add(
                GlyphKind::Text {
                    content: n.label.clone(),
                },
                n.x,
                n.y,
                Color::BLACK,
            );
            map.push(NodeGlyphs {
                name: n.name.clone(),
                shape,
                text,
            });
        }
        (space, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stetho_layout::{SceneEdge, SceneNode};

    fn scene() -> SceneGraph {
        SceneGraph {
            nodes: vec![
                SceneNode {
                    name: "n0".into(),
                    label: "sql.mvc()".into(),
                    x: 50.0,
                    y: 20.0,
                    w: 60.0,
                    h: 20.0,
                },
                SceneNode {
                    name: "n1".into(),
                    label: "sql.tid()".into(),
                    x: 50.0,
                    y: 80.0,
                    w: 60.0,
                    h: 20.0,
                },
            ],
            edges: vec![SceneEdge {
                from: 0,
                to: 1,
                points: vec![(50.0, 20.0), (50.0, 80.0)],
                label: None,
            }],
            width: 100.0,
            height: 100.0,
        }
    }

    #[test]
    fn from_scene_object_counts_match_paper_example() {
        // "two node graph with one edge" → 2 shapes, 2 texts, 1 edge.
        let (space, map) = VirtualSpace::from_scene(&scene());
        assert_eq!(space.len(), 5);
        let shapes = space
            .glyphs()
            .iter()
            .filter(|g| matches!(g.kind, GlyphKind::Shape { .. }))
            .count();
        let texts = space
            .glyphs()
            .iter()
            .filter(|g| matches!(g.kind, GlyphKind::Text { .. }))
            .count();
        let edges = space
            .glyphs()
            .iter()
            .filter(|g| matches!(g.kind, GlyphKind::Edge { .. }))
            .count();
        assert_eq!((shapes, texts, edges), (2, 2, 1));
        assert_eq!(map.len(), 2);
        assert_eq!(map[0].name, "n0");
    }

    #[test]
    fn edges_render_under_nodes() {
        let (space, map) = VirtualSpace::from_scene(&scene());
        // Edge glyphs come first in z-order.
        assert!(matches!(space.glyphs()[0].kind, GlyphKind::Edge { .. }));
        assert!(map[0].shape.0 > 0);
    }

    #[test]
    fn pick_finds_topmost_shape() {
        let (space, map) = VirtualSpace::from_scene(&scene());
        assert_eq!(space.pick(50.0, 20.0), Some(map[0].shape));
        assert_eq!(space.pick(50.0, 80.0), Some(map[1].shape));
        assert_eq!(space.pick(5.0, 50.0), None);
    }

    #[test]
    fn invisible_glyphs_skipped() {
        let (mut space, map) = VirtualSpace::from_scene(&scene());
        space.glyph_mut(map[0].shape).visible = false;
        assert_eq!(space.pick(50.0, 20.0), None);
    }

    #[test]
    fn bounds_cover_everything() {
        let (space, _) = VirtualSpace::from_scene(&scene());
        let (x0, y0, x1, y1) = space.bounds();
        assert!(x0 <= 20.0 && y0 <= 10.0);
        assert!(x1 >= 80.0 && y1 >= 90.0);
    }

    #[test]
    fn recolor_via_glyph_mut() {
        let (mut space, map) = VirtualSpace::from_scene(&scene());
        space.glyph_mut(map[1].shape).color = Color::RED;
        assert_eq!(space.glyph(map[1].shape).color, Color::RED);
        assert_eq!(space.glyph(map[0].shape).color, Color::DEFAULT_FILL);
    }
}
