//! Deterministic animation engine.
//!
//! The paper demos "animation effects such as change of zoom level,
//! color, and transition time between highlights of nodes" (§5). This
//! module provides those as time-parameterised animations driven by an
//! explicit clock — `step(dt)` advances everything — so animation
//! behaviour is reproducible in tests and benchmarks.

use crate::camera::Camera;
use crate::glyph::{Color, GlyphId};
use crate::space::VirtualSpace;

/// Easing functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Easing {
    /// Constant-velocity.
    Linear,
    /// Slow-in / slow-out (smoothstep).
    EaseInOut,
}

impl Easing {
    /// Map linear progress `t ∈ [0,1]` to eased progress.
    pub fn apply(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        match self {
            Easing::Linear => t,
            Easing::EaseInOut => t * t * (3.0 - 2.0 * t),
        }
    }
}

/// A camera slide (pan + zoom transition).
#[derive(Debug, Clone)]
pub struct CameraSlide {
    from: (f64, f64, f64),
    to: (f64, f64, f64),
    duration_ms: f64,
    elapsed_ms: f64,
    easing: Easing,
}

impl CameraSlide {
    /// Slide `camera`'s current pose to `(cx, cy, altitude)` over
    /// `duration_ms`.
    pub fn new(camera: &Camera, to: (f64, f64, f64), duration_ms: f64, easing: Easing) -> Self {
        CameraSlide {
            from: (camera.cx, camera.cy, camera.altitude),
            to,
            duration_ms: duration_ms.max(1e-9),
            elapsed_ms: 0.0,
            easing,
        }
    }

    /// Advance by `dt_ms`, writing the interpolated pose into `camera`.
    /// Returns true while still running.
    pub fn step(&mut self, dt_ms: f64, camera: &mut Camera) -> bool {
        self.elapsed_ms += dt_ms;
        let t = self.easing.apply(self.elapsed_ms / self.duration_ms);
        camera.cx = self.from.0 + (self.to.0 - self.from.0) * t;
        camera.cy = self.from.1 + (self.to.1 - self.from.1) * t;
        camera.altitude = self.from.2 + (self.to.2 - self.from.2) * t;
        self.elapsed_ms < self.duration_ms
    }
}

/// A glyph color fade (used for highlight transitions and the §6
/// gradient-coloring extension).
#[derive(Debug, Clone)]
pub struct ColorFade {
    /// Target glyph.
    pub glyph: GlyphId,
    from: Color,
    to: Color,
    duration_ms: f64,
    elapsed_ms: f64,
}

impl ColorFade {
    /// Fade `glyph` from its current color to `to` over `duration_ms`.
    pub fn new(space: &VirtualSpace, glyph: GlyphId, to: Color, duration_ms: f64) -> Self {
        ColorFade {
            glyph,
            from: space.glyph(glyph).color,
            to,
            duration_ms: duration_ms.max(1e-9),
            elapsed_ms: 0.0,
        }
    }

    /// Advance; writes the interpolated color. Returns true while
    /// running.
    pub fn step(&mut self, dt_ms: f64, space: &mut VirtualSpace) -> bool {
        self.elapsed_ms += dt_ms;
        let t = (self.elapsed_ms / self.duration_ms).clamp(0.0, 1.0);
        space.glyph_mut(self.glyph).color = Color::lerp(self.from, self.to, t);
        self.elapsed_ms < self.duration_ms
    }
}

/// Drives a set of animations against one camera and one space.
#[derive(Default)]
pub struct Animator {
    slides: Vec<CameraSlide>,
    fades: Vec<ColorFade>,
    /// Total animation steps performed (for stats).
    pub steps: u64,
}

impl Animator {
    /// Empty animator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a camera slide.
    pub fn add_slide(&mut self, s: CameraSlide) {
        self.slides.push(s);
    }

    /// Queue a color fade; an existing fade on the same glyph is
    /// replaced (latest state change wins).
    pub fn add_fade(&mut self, f: ColorFade) {
        self.fades.retain(|x| x.glyph != f.glyph);
        self.fades.push(f);
    }

    /// True while any animation is live.
    pub fn busy(&self) -> bool {
        !self.slides.is_empty() || !self.fades.is_empty()
    }

    /// Advance all animations by `dt_ms`.
    pub fn step(&mut self, dt_ms: f64, camera: &mut Camera, space: &mut VirtualSpace) {
        self.steps += 1;
        self.slides.retain_mut(|s| s.step(dt_ms, camera));
        self.fades.retain_mut(|f| f.step(dt_ms, space));
    }

    /// Run everything to completion with a fixed tick.
    pub fn run_to_idle(&mut self, tick_ms: f64, camera: &mut Camera, space: &mut VirtualSpace) {
        while self.busy() {
            self.step(tick_ms, camera, space);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glyph::GlyphKind;

    fn space_with_one_shape() -> (VirtualSpace, GlyphId) {
        let mut s = VirtualSpace::new();
        let id = s.add(
            GlyphKind::Shape { w: 10.0, h: 10.0 },
            0.0,
            0.0,
            Color::DEFAULT_FILL,
        );
        (s, id)
    }

    #[test]
    fn easing_endpoints() {
        for e in [Easing::Linear, Easing::EaseInOut] {
            assert_eq!(e.apply(0.0), 0.0);
            assert_eq!(e.apply(1.0), 1.0);
        }
        assert_eq!(Easing::EaseInOut.apply(0.5), 0.5);
        assert!(Easing::EaseInOut.apply(0.25) < 0.25, "slow start");
    }

    #[test]
    fn camera_slide_reaches_target() {
        let mut cam = Camera::at(0.0, 0.0, 100.0);
        let mut slide = CameraSlide::new(&cam, (50.0, 20.0, 0.0), 100.0, Easing::Linear);
        let mut running = true;
        while running {
            running = slide.step(10.0, &mut cam);
        }
        assert!((cam.cx - 50.0).abs() < 1e-9);
        assert!((cam.cy - 20.0).abs() < 1e-9);
        assert!(cam.altitude.abs() < 1e-9);
    }

    #[test]
    fn slide_midpoint_linear() {
        let mut cam = Camera::at(0.0, 0.0, 0.0);
        let mut slide = CameraSlide::new(&cam, (100.0, 0.0, 0.0), 100.0, Easing::Linear);
        slide.step(50.0, &mut cam);
        assert!((cam.cx - 50.0).abs() < 1e-9);
    }

    #[test]
    fn color_fade_reaches_target() {
        let (mut space, id) = space_with_one_shape();
        let mut fade = ColorFade::new(&space, id, Color::RED, 150.0);
        while fade.step(25.0, &mut space) {}
        assert_eq!(space.glyph(id).color, Color::RED);
    }

    #[test]
    fn animator_drains() {
        let (mut space, id) = space_with_one_shape();
        let mut cam = Camera::default();
        let mut a = Animator::new();
        a.add_slide(CameraSlide::new(
            &cam,
            (10.0, 10.0, 50.0),
            80.0,
            Easing::EaseInOut,
        ));
        a.add_fade(ColorFade::new(&space, id, Color::GREEN, 40.0));
        assert!(a.busy());
        a.run_to_idle(16.0, &mut cam, &mut space);
        assert!(!a.busy());
        assert_eq!(space.glyph(id).color, Color::GREEN);
        assert!((cam.cx - 10.0).abs() < 1e-9);
    }

    #[test]
    fn newer_fade_replaces_older_on_same_glyph() {
        let (mut space, id) = space_with_one_shape();
        let mut cam = Camera::default();
        let mut a = Animator::new();
        a.add_fade(ColorFade::new(&space, id, Color::RED, 1000.0));
        a.add_fade(ColorFade::new(&space, id, Color::GREEN, 20.0));
        a.run_to_idle(10.0, &mut cam, &mut space);
        assert_eq!(space.glyph(id).color, Color::GREEN);
    }
}
