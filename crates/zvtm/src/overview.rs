//! Birds-eye views.
//!
//! The offline demo offers a "birds eye view of the entire trace, to
//! understand the sequence of instruction execution clustering" (§5).
//! Two overviews are provided:
//!
//! * [`birdseye`] — the whole virtual space rendered into a thumbnail
//!   (the classic ZGrviewer overview pane);
//! * [`trace_strip`] — the full trace as a horizontal strip, one colored
//!   band per event in execution order, which makes temporal clustering
//!   of costly instructions visible at a glance.

use crate::camera::Camera;
use crate::glyph::Color;
use crate::render::{render, Framebuffer, RenderOptions};
use crate::space::VirtualSpace;

/// Render the whole space into a `width`×`height` thumbnail.
pub fn birdseye(space: &VirtualSpace, width: usize, height: usize) -> Framebuffer {
    let mut cam = Camera::default();
    if !space.is_empty() {
        cam.fit(space.bounds(), width as f64, height as f64, 1.05);
    }
    render(
        space,
        &cam,
        width,
        height,
        &RenderOptions {
            lens: None,
            skip_text: true,
        },
    )
}

/// Render a sequence of per-event colors as a strip image: events on the
/// x axis (left = first), each event a vertical band.
pub fn trace_strip(colors: &[Color], width: usize, height: usize) -> Framebuffer {
    let mut fb = Framebuffer::new(width, height);
    if colors.is_empty() || width == 0 {
        return fb;
    }
    for x in 0..width {
        let idx = x * colors.len() / width;
        let c = colors[idx.min(colors.len() - 1)];
        for y in 0..height {
            fb.set(x as i64, y as i64, c);
        }
    }
    fb
}

/// Map per-event durations to strip colors: cheap events light gray,
/// costly ones shading to RED by quantile.
pub fn duration_colors(durations_usec: &[u64]) -> Vec<Color> {
    if durations_usec.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<u64> = durations_usec.to_vec();
    sorted.sort_unstable();
    let p = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
    let (p50, p90) = (p(0.5), p(0.9));
    durations_usec
        .iter()
        .map(|&d| {
            if d > p90 {
                Color::RED
            } else if d > p50 {
                Color::lerp(Color::DEFAULT_FILL, Color::RED, 0.5)
            } else {
                Color::DEFAULT_FILL
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glyph::GlyphKind;

    #[test]
    fn birdseye_fits_everything() {
        let mut space = VirtualSpace::new();
        // A wide space: nodes far apart.
        space.add(GlyphKind::Shape { w: 40.0, h: 20.0 }, 0.0, 0.0, Color::RED);
        space.add(
            GlyphKind::Shape { w: 40.0, h: 20.0 },
            5000.0,
            3000.0,
            Color::GREEN,
        );
        let fb = birdseye(&space, 120, 80);
        assert!(fb.count_color(Color::RED) > 0, "far-left node visible");
        assert!(fb.count_color(Color::GREEN) > 0, "far-right node visible");
    }

    #[test]
    fn birdseye_of_empty_space() {
        let fb = birdseye(&VirtualSpace::new(), 10, 10);
        assert_eq!(fb.count_color(Color::WHITE), 100);
    }

    #[test]
    fn strip_orders_left_to_right() {
        let colors = vec![Color::RED, Color::GREEN];
        let fb = trace_strip(&colors, 10, 2);
        assert_eq!(fb.get(0, 0), Color::RED);
        assert_eq!(fb.get(9, 0), Color::GREEN);
        assert_eq!(fb.count_color(Color::RED), 10);
        assert_eq!(fb.count_color(Color::GREEN), 10);
    }

    #[test]
    fn strip_handles_more_events_than_pixels() {
        let colors: Vec<Color> = (0..1000)
            .map(|i| if i < 500 { Color::RED } else { Color::GREEN })
            .collect();
        let fb = trace_strip(&colors, 10, 1);
        assert_eq!(fb.count_color(Color::RED), 5);
        assert_eq!(fb.count_color(Color::GREEN), 5);
    }

    #[test]
    fn empty_strip() {
        let fb = trace_strip(&[], 10, 2);
        assert_eq!(fb.count_color(Color::WHITE), 20);
    }

    #[test]
    fn duration_colors_mark_costly_tail() {
        let mut d = vec![10u64; 95];
        d.extend([10_000u64; 5]);
        let colors = duration_colors(&d);
        let reds = colors.iter().filter(|&&c| c == Color::RED).count();
        assert_eq!(reds, 5, "the 5 costly events must be red");
        assert!(colors[..95].iter().all(|&c| c == Color::DEFAULT_FILL));
    }

    #[test]
    fn duration_colors_empty() {
        assert!(duration_colors(&[]).is_empty());
    }
}
