//! Fisheye lens — one of ZGrviewer's "plethora of features such as set
//! of lenses viz. fish eye lens, etc. for visual interaction with graph
//! nodes" (§3.1).
//!
//! Implements the Sarkar–Brown graphical fisheye: points within the lens
//! radius are pushed outward from the focus, magnifying the centre;
//! points outside are untouched, and the mapping is continuous at the
//! boundary.

/// A graphical fisheye lens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisheyeLens {
    /// Focus x (world coordinates).
    pub fx: f64,
    /// Focus y.
    pub fy: f64,
    /// Lens radius.
    pub radius: f64,
    /// Distortion factor `d ≥ 0`; magnification at the focus is `d + 1`.
    pub distortion: f64,
}

impl FisheyeLens {
    /// Lens at a focus point.
    pub fn new(fx: f64, fy: f64, radius: f64, distortion: f64) -> Self {
        FisheyeLens {
            fx,
            fy,
            radius: radius.max(1e-9),
            distortion: distortion.max(0.0),
        }
    }

    /// Transform a world point through the lens.
    pub fn transform(&self, x: f64, y: f64) -> (f64, f64) {
        let dx = x - self.fx;
        let dy = y - self.fy;
        let r = (dx * dx + dy * dy).sqrt();
        if r >= self.radius || r == 0.0 {
            return (x, y);
        }
        let norm = r / self.radius;
        let g = ((self.distortion + 1.0) * norm) / (self.distortion * norm + 1.0);
        let scale = g * self.radius / r;
        (self.fx + dx * scale, self.fy + dy * scale)
    }

    /// Local magnification at the focus.
    pub fn focus_magnification(&self) -> f64 {
        self.distortion + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn focus_is_fixed_point() {
        let l = FisheyeLens::new(10.0, 20.0, 50.0, 3.0);
        assert_eq!(l.transform(10.0, 20.0), (10.0, 20.0));
    }

    #[test]
    fn outside_radius_unchanged() {
        let l = FisheyeLens::new(0.0, 0.0, 10.0, 3.0);
        assert_eq!(l.transform(20.0, 0.0), (20.0, 0.0));
        assert_eq!(l.transform(0.0, -10.0), (0.0, -10.0));
    }

    #[test]
    fn boundary_is_continuous() {
        let l = FisheyeLens::new(0.0, 0.0, 10.0, 4.0);
        let just_in = l.transform(9.999, 0.0);
        assert!((just_in.0 - 9.999).abs() < 0.01, "continuous at boundary");
    }

    #[test]
    fn interior_points_pushed_outward() {
        let l = FisheyeLens::new(0.0, 0.0, 10.0, 3.0);
        let (x, _) = l.transform(2.0, 0.0);
        assert!(x > 2.0, "magnified outward, got {x}");
        let (x2, _) = l.transform(5.0, 0.0);
        assert!(x2 > 5.0 && x2 < 10.0);
    }

    #[test]
    fn monotone_along_ray() {
        let l = FisheyeLens::new(0.0, 0.0, 10.0, 5.0);
        let mut prev = 0.0;
        for i in 1..100 {
            let r = i as f64 * 0.1;
            let (x, _) = l.transform(r, 0.0);
            assert!(x > prev, "ordering must be preserved");
            prev = x;
        }
    }

    #[test]
    fn zero_distortion_is_identity() {
        let l = FisheyeLens::new(0.0, 0.0, 10.0, 0.0);
        for &(x, y) in &[(1.0, 1.0), (3.0, -2.0), (0.5, 0.1)] {
            let (tx, ty) = l.transform(x, y);
            assert!((tx - x).abs() < 1e-9 && (ty - y).abs() < 1e-9);
        }
        assert_eq!(l.focus_magnification(), 1.0);
    }

    #[test]
    fn magnification_scales_with_distortion() {
        let l = FisheyeLens::new(0.0, 0.0, 10.0, 3.0);
        assert_eq!(l.focus_magnification(), 4.0);
        // Near the focus the gradient approaches d+1.
        let eps = 0.01;
        let (x, _) = l.transform(eps, 0.0);
        assert!((x / eps - 4.0).abs() < 0.05, "gradient {}", x / eps);
    }
}
