//! Cameras — "a camera object, which shows different views at different
//! zoom levels, in a virtual space" (§3.1).
//!
//! ZVTM cameras use an *altitude* model: the camera hovers over the
//! virtual space; higher altitude = more of the space visible at smaller
//! scale. `scale = focal / (focal + altitude)`.

/// A camera over a virtual space.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    /// World x the camera is centred on.
    pub cx: f64,
    /// World y the camera is centred on.
    pub cy: f64,
    /// Height above the canvas; 0 = 1:1 scale.
    pub altitude: f64,
    /// Focal length (fixed per camera).
    pub focal: f64,
}

impl Default for Camera {
    fn default() -> Self {
        Camera {
            cx: 0.0,
            cy: 0.0,
            altitude: 0.0,
            focal: 100.0,
        }
    }
}

impl Camera {
    /// Camera centred on a point at an altitude.
    pub fn at(cx: f64, cy: f64, altitude: f64) -> Self {
        Camera {
            cx,
            cy,
            altitude,
            ..Default::default()
        }
    }

    /// Current projection scale.
    pub fn scale(&self) -> f64 {
        self.focal / (self.focal + self.altitude.max(0.0))
    }

    /// World → screen, given the viewport size.
    pub fn project(&self, wx: f64, wy: f64, vw: f64, vh: f64) -> (f64, f64) {
        let s = self.scale();
        ((wx - self.cx) * s + vw / 2.0, (wy - self.cy) * s + vh / 2.0)
    }

    /// Screen → world (inverse of [`Self::project`]).
    pub fn unproject(&self, sx: f64, sy: f64, vw: f64, vh: f64) -> (f64, f64) {
        let s = self.scale();
        ((sx - vw / 2.0) / s + self.cx, (sy - vh / 2.0) / s + self.cy)
    }

    /// World rectangle visible in the viewport: `(x0, y0, x1, y1)`.
    pub fn visible_region(&self, vw: f64, vh: f64) -> (f64, f64, f64, f64) {
        let (x0, y0) = self.unproject(0.0, 0.0, vw, vh);
        let (x1, y1) = self.unproject(vw, vh, vw, vh);
        (x0, y0, x1, y1)
    }

    /// Pan by a world-space delta.
    pub fn pan(&mut self, dx: f64, dy: f64) {
        self.cx += dx;
        self.cy += dy;
    }

    /// Multiply altitude (mouse-wheel zoom); factor < 1 zooms in. The
    /// floor of 1.0 lets repeated zoom-outs escape altitude 0.
    pub fn zoom(&mut self, factor: f64) {
        self.altitude = (self.altitude.max(1.0) * factor).max(0.0);
        if self.altitude < 0.01 {
            self.altitude = 0.0;
        }
    }

    /// Zoom keeping the world point under the given screen position fixed
    /// (scroll-wheel-at-cursor behaviour).
    pub fn zoom_at(&mut self, factor: f64, sx: f64, sy: f64, vw: f64, vh: f64) {
        let (wx, wy) = self.unproject(sx, sy, vw, vh);
        self.zoom(factor);
        let (nx, ny) = self.unproject(sx, sy, vw, vh);
        self.cx += wx - nx;
        self.cy += wy - ny;
    }

    /// Position the camera so the world rect fits the viewport with a
    /// margin factor (e.g. 1.05 = 5% slack).
    pub fn fit(&mut self, bounds: (f64, f64, f64, f64), vw: f64, vh: f64, margin: f64) {
        let (x0, y0, x1, y1) = bounds;
        self.cx = (x0 + x1) / 2.0;
        self.cy = (y0 + y1) / 2.0;
        let w = (x1 - x0).max(1e-9) * margin;
        let h = (y1 - y0).max(1e-9) * margin;
        let need_scale = (vw / w).min(vh / h);
        // scale = focal/(focal+alt)  ⇒  alt = focal (1/scale − 1).
        self.altitude = if need_scale >= 1.0 {
            0.0
        } else {
            self.focal * (1.0 / need_scale - 1.0)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_at_zero_altitude_is_one() {
        let c = Camera::default();
        assert_eq!(c.scale(), 1.0);
    }

    #[test]
    fn higher_altitude_shrinks() {
        let mut c = Camera::at(0.0, 0.0, 100.0);
        assert!((c.scale() - 0.5).abs() < 1e-12);
        c.altitude = 300.0;
        assert!((c.scale() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn project_unproject_inverse() {
        let c = Camera::at(37.0, -12.0, 140.0);
        for &(x, y) in &[(0.0, 0.0), (100.0, 50.0), (-30.0, 999.0)] {
            let (sx, sy) = c.project(x, y, 800.0, 600.0);
            let (bx, by) = c.unproject(sx, sy, 800.0, 600.0);
            assert!((bx - x).abs() < 1e-9 && (by - y).abs() < 1e-9);
        }
    }

    #[test]
    fn centre_projects_to_viewport_centre() {
        let c = Camera::at(10.0, 20.0, 50.0);
        assert_eq!(c.project(10.0, 20.0, 640.0, 480.0), (320.0, 240.0));
    }

    #[test]
    fn visible_region_grows_with_altitude() {
        let low = Camera::at(0.0, 0.0, 0.0).visible_region(100.0, 100.0);
        let high = Camera::at(0.0, 0.0, 300.0).visible_region(100.0, 100.0);
        let area = |r: (f64, f64, f64, f64)| (r.2 - r.0) * (r.3 - r.1);
        assert!(area(high) > area(low) * 10.0);
    }

    #[test]
    fn fit_makes_bounds_visible() {
        let mut c = Camera::default();
        c.fit((0.0, 0.0, 2000.0, 1000.0), 800.0, 600.0, 1.05);
        let r = c.visible_region(800.0, 600.0);
        assert!(r.0 <= 0.0 && r.1 <= 0.0 && r.2 >= 2000.0 && r.3 >= 1000.0);
    }

    #[test]
    fn fit_small_scene_keeps_scale_one() {
        let mut c = Camera::default();
        c.fit((0.0, 0.0, 100.0, 100.0), 800.0, 600.0, 1.0);
        assert_eq!(c.altitude, 0.0);
        assert_eq!((c.cx, c.cy), (50.0, 50.0));
    }

    #[test]
    fn zoom_at_keeps_cursor_point_fixed() {
        let mut c = Camera::at(0.0, 0.0, 200.0);
        let (vw, vh) = (800.0, 600.0);
        let (sx, sy) = (100.0, 450.0);
        let before = c.unproject(sx, sy, vw, vh);
        c.zoom_at(0.5, sx, sy, vw, vh);
        let after = c.unproject(sx, sy, vw, vh);
        assert!((before.0 - after.0).abs() < 1e-9);
        assert!((before.1 - after.1).abs() < 1e-9);
        assert!(c.altitude < 200.0);
    }

    #[test]
    fn pan_moves_centre() {
        let mut c = Camera::default();
        c.pan(10.0, -5.0);
        assert_eq!((c.cx, c.cy), (10.0, -5.0));
    }

    #[test]
    fn altitude_never_negative() {
        let mut c = Camera::at(0.0, 0.0, 1.0);
        for _ in 0..100 {
            c.zoom(0.5);
        }
        assert!(c.altitude >= 0.0);
        assert!(c.scale() <= 1.0);
    }
}
