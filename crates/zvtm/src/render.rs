//! Headless rendering: rasterise a virtual space through a camera into a
//! pixel framebuffer (PPM), or emit an SVG frame. These are the
//! "display window" outputs — Figure 4 of the paper rendered without a
//! GUI toolkit.

use std::fmt::Write as _;

use crate::camera::Camera;
use crate::glyph::{Color, GlyphKind};
use crate::lens::FisheyeLens;
use crate::space::VirtualSpace;

/// An RGB framebuffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    pixels: Vec<Color>,
}

impl Framebuffer {
    /// White canvas.
    pub fn new(width: usize, height: usize) -> Self {
        Framebuffer {
            width,
            height,
            pixels: vec![Color::WHITE; width * height],
        }
    }

    /// Pixel read.
    pub fn get(&self, x: usize, y: usize) -> Color {
        self.pixels[y * self.width + x]
    }

    /// Pixel write (out-of-bounds writes are clipped).
    pub fn set(&mut self, x: i64, y: i64, c: Color) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.pixels[y as usize * self.width + x as usize] = c;
        }
    }

    /// Filled rectangle (clipped).
    pub fn fill_rect(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, c: Color) {
        for y in y0.max(0)..=y1.min(self.height as i64 - 1) {
            for x in x0.max(0)..=x1.min(self.width as i64 - 1) {
                self.set(x, y, c);
            }
        }
    }

    /// Bresenham line (clipped per pixel).
    pub fn line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, c: Color) {
        let (mut x, mut y) = (x0, y0);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.set(x, y, c);
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Count pixels of an exact color (test/analysis helper).
    pub fn count_color(&self, c: Color) -> usize {
        self.pixels.iter().filter(|&&p| p == c).count()
    }

    /// Encode as a plain-text PPM (P3).
    pub fn to_ppm(&self) -> String {
        let mut out = String::with_capacity(self.pixels.len() * 12 + 32);
        let _ = writeln!(out, "P3\n{} {}\n255", self.width, self.height);
        for (i, p) in self.pixels.iter().enumerate() {
            let _ = write!(out, "{} {} {}", p.r, p.g, p.b);
            out.push(if (i + 1) % self.width == 0 { '\n' } else { ' ' });
        }
        out
    }
}

/// Renderer options.
#[derive(Debug, Clone, Default)]
pub struct RenderOptions {
    /// Optional fisheye lens applied to world coordinates.
    pub lens: Option<FisheyeLens>,
    /// Skip text glyphs (they render as underlines in pixel output).
    pub skip_text: bool,
}

/// Rasterise the space through the camera into a `width`×`height` frame.
pub fn render(
    space: &VirtualSpace,
    camera: &Camera,
    width: usize,
    height: usize,
    opts: &RenderOptions,
) -> Framebuffer {
    let mut fb = Framebuffer::new(width, height);
    let (vw, vh) = (width as f64, height as f64);
    let world_to_screen = |x: f64, y: f64| -> (i64, i64) {
        let (lx, ly) = match &opts.lens {
            Some(lens) => lens.transform(x, y),
            None => (x, y),
        };
        let (sx, sy) = camera.project(lx, ly, vw, vh);
        (sx.round() as i64, sy.round() as i64)
    };
    for g in space.glyphs() {
        if !g.visible {
            continue;
        }
        match &g.kind {
            GlyphKind::Edge { points } => {
                for w in points.windows(2) {
                    let (x0, y0) = world_to_screen(w[0].0, w[0].1);
                    let (x1, y1) = world_to_screen(w[1].0, w[1].1);
                    fb.line(x0, y0, x1, y1, g.color);
                }
            }
            GlyphKind::Shape { .. } => {
                let (bx0, by0, bx1, by1) = g.bounds();
                let (x0, y0) = world_to_screen(bx0, by0);
                let (x1, y1) = world_to_screen(bx1, by1);
                fb.fill_rect(x0, y0, x1, y1, g.color);
                // Border — skipped when the box is so small (birds-eye
                // zoom levels) that it would overdraw the fill entirely.
                if x1 - x0 >= 3 && y1 - y0 >= 3 {
                    fb.line(x0, y0, x1, y0, Color::BLACK);
                    fb.line(x0, y1, x1, y1, Color::BLACK);
                    fb.line(x0, y0, x0, y1, Color::BLACK);
                    fb.line(x1, y0, x1, y1, Color::BLACK);
                }
            }
            GlyphKind::Text { content } => {
                if opts.skip_text {
                    continue;
                }
                // Text renders as a baseline mark (headless stand-in).
                let w = content.len() as f64 * 7.0;
                let (x0, y) = world_to_screen(g.x - w / 2.0, g.y + 6.0);
                let (x1, _) = world_to_screen(g.x + w / 2.0, g.y + 6.0);
                fb.line(x0, y, x1, y, g.color);
            }
        }
    }
    fb
}

/// Emit an SVG frame of the whole space (camera-independent; the SVG
/// viewer's viewBox does the zooming).
pub fn render_svg_frame(space: &VirtualSpace) -> String {
    let (x0, y0, x1, y1) = space.bounds();
    let (w, h) = ((x1 - x0).max(1.0), (y1 - y0).max(1.0));
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="{x0:.1} {y0:.1} {w:.1} {h:.1}">"#
    );
    for g in space.glyphs() {
        if !g.visible {
            continue;
        }
        match &g.kind {
            GlyphKind::Edge { points } => {
                let pts: Vec<String> = points
                    .iter()
                    .map(|(x, y)| format!("{x:.1},{y:.1}"))
                    .collect();
                let _ = writeln!(
                    out,
                    r#"  <polyline points="{}" fill="none" stroke="{}"/>"#,
                    pts.join(" "),
                    g.color.css()
                );
            }
            GlyphKind::Shape { w, h } => {
                let _ = writeln!(
                    out,
                    r#"  <rect x="{:.1}" y="{:.1}" width="{w:.1}" height="{h:.1}" fill="{}" stroke="black"/>"#,
                    g.x - w / 2.0,
                    g.y - h / 2.0,
                    g.color.css()
                );
            }
            GlyphKind::Text { content } => {
                let body = content
                    .replace('&', "&amp;")
                    .replace('<', "&lt;")
                    .replace('>', "&gt;");
                let _ = writeln!(
                    out,
                    r#"  <text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="11">{}</text>"#,
                    g.x,
                    g.y + 4.0,
                    body
                );
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glyph::GlyphKind;

    fn demo_space() -> VirtualSpace {
        let mut s = VirtualSpace::new();
        s.add(
            GlyphKind::Edge {
                points: vec![(50.0, 20.0), (50.0, 80.0)],
            },
            0.0,
            0.0,
            Color::EDGE,
        );
        s.add(
            GlyphKind::Shape { w: 40.0, h: 20.0 },
            50.0,
            20.0,
            Color::RED,
        );
        s.add(
            GlyphKind::Shape { w: 40.0, h: 20.0 },
            50.0,
            80.0,
            Color::GREEN,
        );
        s
    }

    #[test]
    fn shapes_rasterise_with_their_colors() {
        let space = demo_space();
        let mut cam = Camera::default();
        cam.fit(space.bounds(), 100.0, 100.0, 1.0);
        let fb = render(&space, &cam, 100, 100, &RenderOptions::default());
        assert!(fb.count_color(Color::RED) > 100);
        assert!(fb.count_color(Color::GREEN) > 100);
        assert!(fb.count_color(Color::WHITE) > 1000);
    }

    #[test]
    fn zooming_out_shrinks_coverage() {
        let space = demo_space();
        let mut near = Camera::default();
        near.fit(space.bounds(), 100.0, 100.0, 1.0);
        let mut far = near.clone();
        far.altitude = (far.altitude + 1.0) * 8.0;
        let fb_near = render(&space, &near, 100, 100, &RenderOptions::default());
        let fb_far = render(&space, &far, 100, 100, &RenderOptions::default());
        assert!(fb_far.count_color(Color::RED) < fb_near.count_color(Color::RED));
    }

    #[test]
    fn invisible_glyphs_not_drawn() {
        let mut space = demo_space();
        let id = space.glyphs()[1].id;
        space.glyph_mut(id).visible = false;
        let mut cam = Camera::default();
        cam.fit(space.bounds(), 100.0, 100.0, 1.0);
        let fb = render(&space, &cam, 100, 100, &RenderOptions::default());
        assert_eq!(fb.count_color(Color::RED), 0);
    }

    #[test]
    fn ppm_encoding_wellformed() {
        let fb = Framebuffer::new(4, 2);
        let ppm = fb.to_ppm();
        assert!(ppm.starts_with("P3\n4 2\n255\n"));
        assert_eq!(ppm.lines().count(), 3 + 2);
    }

    #[test]
    fn line_clipping_is_safe() {
        let mut fb = Framebuffer::new(10, 10);
        fb.line(-100, -100, 100, 100, Color::BLACK);
        fb.fill_rect(-5, -5, 20, 20, Color::RED);
        assert_eq!(fb.count_color(Color::RED), 100);
    }

    #[test]
    fn svg_frame_contains_colors() {
        let space = demo_space();
        let svg = render_svg_frame(&space);
        assert!(svg.contains("#d02020"));
        assert!(svg.contains("#20a020"));
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn lens_distorts_rendering() {
        let space = demo_space();
        let mut cam = Camera::default();
        cam.fit(space.bounds(), 200.0, 200.0, 1.0);
        let plain = render(&space, &cam, 200, 200, &RenderOptions::default());
        let lensed = render(
            &space,
            &cam,
            200,
            200,
            &RenderOptions {
                lens: Some(FisheyeLens::new(50.0, 20.0, 60.0, 3.0)),
                skip_text: false,
            },
        );
        assert_ne!(plain, lensed, "lens must change the rendered frame");
    }
}
