//! # stetho-tpch — a deterministic, scaled-down TPC-H data generator
//!
//! The paper demos Stethoscope "while analyzing long running TPC-H
//! queries" (§5), and its Figure-1 example query runs over the TPC-H
//! `lineitem` table. This crate is our `dbgen` substitute: it fills a
//! [`stetho_engine::Catalog`] with the TPC-H schema at a fractional scale
//! factor, using a fixed-seed RNG so every run (and every benchmark) sees
//! identical data.
//!
//! Cardinalities follow the TPC-H ratios: at scale factor `sf`,
//! `lineitem` has ≈ 6,000,000 × sf rows, `orders` 1,500,000 × sf, and so
//! on. The [`queries`] module provides the SQL texts used by examples,
//! tests and benchmarks (Q1/Q3/Q6-style plus the paper's Figure-1 query).

pub mod gen;
pub mod queries;

pub use gen::{generate_catalog, TpchConfig};
