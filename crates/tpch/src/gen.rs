//! The generator proper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stetho_engine::{Bat, Catalog, TableDef};
use stetho_mal::MalType;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// TPC-H scale factor; 0.001 ≈ 6,000 lineitem rows.
    pub scale_factor: f64,
    /// RNG seed (fixed default for reproducibility).
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale_factor: 0.001,
            seed: 0x5747_4801,
        }
    }
}

impl TpchConfig {
    /// Config at a given scale factor with the default seed.
    pub fn sf(scale_factor: f64) -> Self {
        TpchConfig {
            scale_factor,
            ..Default::default()
        }
    }

    fn scaled(&self, base: u64) -> usize {
        ((base as f64 * self.scale_factor).round() as usize).max(1)
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const TYPES: [&str; 6] = [
    "STANDARD ANODIZED",
    "SMALL PLATED",
    "MEDIUM POLISHED",
    "LARGE BRUSHED",
    "ECONOMY BURNISHED",
    "PROMO TIN",
];

/// Days since epoch for 1992-01-01 and the order-date span (TPC-H dates
/// run 1992-01-01 .. 1998-08-02).
const START_DATE: i32 = 8035;
const DATE_SPAN: i32 = 2405;

/// Generate the full TPC-H catalog at the configured scale.
pub fn generate_catalog(cfg: &TpchConfig) -> Catalog {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut catalog = Catalog::new();

    // region
    catalog.add_table(
        TableDef::new(
            "region",
            vec![
                col_int("r_regionkey", (0..REGIONS.len() as i64).collect()),
                col_str("r_name", REGIONS.iter().map(|s| s.to_string()).collect()),
            ],
        )
        .expect("region table"),
    );

    // nation
    catalog.add_table(
        TableDef::new(
            "nation",
            vec![
                col_int("n_nationkey", (0..NATIONS.len() as i64).collect()),
                col_str(
                    "n_name",
                    NATIONS.iter().map(|(n, _)| n.to_string()).collect(),
                ),
                col_int("n_regionkey", NATIONS.iter().map(|(_, r)| *r).collect()),
            ],
        )
        .expect("nation table"),
    );

    // supplier: 10,000 × sf
    let n_supp = cfg.scaled(10_000);
    catalog.add_table(
        TableDef::new(
            "supplier",
            vec![
                col_int("s_suppkey", (1..=n_supp as i64).collect()),
                col_str(
                    "s_name",
                    (1..=n_supp).map(|i| format!("Supplier#{i:09}")).collect(),
                ),
                col_int(
                    "s_nationkey",
                    (0..n_supp).map(|_| rng.gen_range(0..25)).collect(),
                ),
                col_dbl(
                    "s_acctbal",
                    (0..n_supp)
                        .map(|_| round2(rng.gen_range(-999.99..9999.99)))
                        .collect(),
                ),
            ],
        )
        .expect("supplier table"),
    );

    // part: 200,000 × sf
    let n_part = cfg.scaled(200_000);
    catalog.add_table(
        TableDef::new(
            "part",
            vec![
                col_int("p_partkey", (1..=n_part as i64).collect()),
                col_str(
                    "p_name",
                    (1..=n_part).map(|i| format!("part {i}")).collect(),
                ),
                col_str(
                    "p_brand",
                    (0..n_part)
                        .map(|_| BRANDS[rng.gen_range(0..BRANDS.len())].to_string())
                        .collect(),
                ),
                col_str(
                    "p_type",
                    (0..n_part)
                        .map(|_| TYPES[rng.gen_range(0..TYPES.len())].to_string())
                        .collect(),
                ),
                col_dbl(
                    "p_retailprice",
                    (0..n_part)
                        .map(|i| round2(900.0 + (i % 1000) as f64 * 0.1))
                        .collect(),
                ),
            ],
        )
        .expect("part table"),
    );

    // customer: 150,000 × sf
    let n_cust = cfg.scaled(150_000);
    catalog.add_table(
        TableDef::new(
            "customer",
            vec![
                col_int("c_custkey", (1..=n_cust as i64).collect()),
                col_str(
                    "c_name",
                    (1..=n_cust).map(|i| format!("Customer#{i:09}")).collect(),
                ),
                col_int(
                    "c_nationkey",
                    (0..n_cust).map(|_| rng.gen_range(0..25)).collect(),
                ),
                col_str(
                    "c_mktsegment",
                    (0..n_cust)
                        .map(|_| SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string())
                        .collect(),
                ),
                col_dbl(
                    "c_acctbal",
                    (0..n_cust)
                        .map(|_| round2(rng.gen_range(-999.99..9999.99)))
                        .collect(),
                ),
            ],
        )
        .expect("customer table"),
    );

    // orders: 1,500,000 × sf
    let n_ord = cfg.scaled(1_500_000);
    let o_orderdate: Vec<i32> = (0..n_ord)
        .map(|_| START_DATE + rng.gen_range(0..DATE_SPAN))
        .collect();
    catalog.add_table(
        TableDef::new(
            "orders",
            vec![
                col_int("o_orderkey", (1..=n_ord as i64).collect()),
                col_int(
                    "o_custkey",
                    (0..n_ord)
                        .map(|_| rng.gen_range(1..=n_cust as i64))
                        .collect(),
                ),
                col_date("o_orderdate", o_orderdate.clone()),
                col_str(
                    "o_orderpriority",
                    (0..n_ord)
                        .map(|_| PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_string())
                        .collect(),
                ),
                col_dbl(
                    "o_totalprice",
                    (0..n_ord)
                        .map(|_| round2(rng.gen_range(850.0..560000.0)))
                        .collect(),
                ),
                col_int("o_shippriority", vec![0; n_ord]),
            ],
        )
        .expect("orders table"),
    );

    // lineitem: ~4 lines per order (6,000,000 × sf total on average).
    let mut l_orderkey = Vec::new();
    let mut l_partkey = Vec::new();
    let mut l_suppkey = Vec::new();
    let mut l_linenumber = Vec::new();
    let mut l_quantity = Vec::new();
    let mut l_extendedprice = Vec::new();
    let mut l_discount = Vec::new();
    let mut l_tax = Vec::new();
    let mut l_returnflag = Vec::new();
    let mut l_shipmode = Vec::new();
    let mut l_linestatus = Vec::new();
    let mut l_shipdate = Vec::new();
    for (oi, &odate) in o_orderdate.iter().enumerate() {
        let lines = rng.gen_range(1..=7);
        for ln in 1..=lines {
            l_orderkey.push(oi as i64 + 1);
            l_partkey.push(rng.gen_range(1..=n_part as i64));
            l_suppkey.push(rng.gen_range(1..=n_supp as i64));
            l_linenumber.push(ln as i64);
            let qty = rng.gen_range(1..=50i64);
            l_quantity.push(qty);
            let price = round2(qty as f64 * rng.gen_range(900.0..1100.0));
            l_extendedprice.push(price);
            l_discount.push(round2(rng.gen_range(0.0..0.10)));
            l_tax.push(round2(rng.gen_range(0.0..0.08)));
            let ship = odate + rng.gen_range(1..=121);
            l_shipdate.push(ship);
            l_shipmode.push(SHIPMODES[rng.gen_range(0..SHIPMODES.len())].to_string());
            // Flags per the TPC-H rule: returns for shipments before the
            // "current date" horizon, split R/A; later ones N.
            if ship <= START_DATE + DATE_SPAN - 151 {
                l_returnflag.push(if rng.gen_bool(0.5) { "R" } else { "A" }.to_string());
                l_linestatus.push("F".to_string());
            } else {
                l_returnflag.push("N".to_string());
                l_linestatus.push(if rng.gen_bool(0.5) { "O" } else { "F" }.to_string());
            }
        }
    }
    catalog.add_table(
        TableDef::new(
            "lineitem",
            vec![
                col_int("l_orderkey", l_orderkey),
                col_int("l_partkey", l_partkey),
                col_int("l_suppkey", l_suppkey),
                col_int("l_linenumber", l_linenumber),
                col_int("l_quantity", l_quantity),
                col_dbl("l_extendedprice", l_extendedprice),
                col_dbl("l_discount", l_discount),
                col_dbl("l_tax", l_tax),
                col_str("l_returnflag", l_returnflag),
                col_str("l_linestatus", l_linestatus),
                col_date("l_shipdate", l_shipdate),
                col_str("l_shipmode", l_shipmode),
            ],
        )
        .expect("lineitem table"),
    );

    catalog
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn col_int(name: &str, v: Vec<i64>) -> (String, MalType, Bat) {
    (name.to_string(), MalType::Int, Bat::ints(v))
}

fn col_dbl(name: &str, v: Vec<f64>) -> (String, MalType, Bat) {
    (name.to_string(), MalType::Dbl, Bat::dbls(v))
}

fn col_str(name: &str, v: Vec<String>) -> (String, MalType, Bat) {
    (name.to_string(), MalType::Str, Bat::strs(v))
}

fn col_date(name: &str, v: Vec<i32>) -> (String, MalType, Bat) {
    (name.to_string(), MalType::Date, Bat::dates(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale() {
        let c = generate_catalog(&TpchConfig::sf(0.001));
        assert_eq!(c.table("region").unwrap().rows(), 5);
        assert_eq!(c.table("nation").unwrap().rows(), 25);
        assert_eq!(c.table("customer").unwrap().rows(), 150);
        assert_eq!(c.table("orders").unwrap().rows(), 1500);
        let li = c.table("lineitem").unwrap().rows();
        assert!((4000..9000).contains(&li), "lineitem rows {li}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = generate_catalog(&TpchConfig::sf(0.0005));
        let b = generate_catalog(&TpchConfig::sf(0.0005));
        let ca = a.column("lineitem", "l_quantity").unwrap();
        let cb = b.column("lineitem", "l_quantity").unwrap();
        assert_eq!(ca.as_ints().unwrap(), cb.as_ints().unwrap());
        let ca = a.column("orders", "o_totalprice").unwrap();
        let cb = b.column("orders", "o_totalprice").unwrap();
        assert_eq!(ca.as_dbls().unwrap(), cb.as_dbls().unwrap());
    }

    #[test]
    fn value_domains() {
        let c = generate_catalog(&TpchConfig::sf(0.001));
        let qty = c.column("lineitem", "l_quantity").unwrap();
        assert!(qty
            .as_ints()
            .unwrap()
            .iter()
            .all(|&q| (1..=50).contains(&q)));
        let disc = c.column("lineitem", "l_discount").unwrap();
        assert!(disc
            .as_dbls()
            .unwrap()
            .iter()
            .all(|&d| (0.0..=0.10).contains(&d)));
        let flags = c.column("lineitem", "l_returnflag").unwrap();
        for i in 0..flags.len() {
            let f = flags.get(i).unwrap();
            let f = f.as_str().unwrap();
            assert!(["R", "A", "N"].contains(&f));
        }
        let custkeys = c.column("orders", "o_custkey").unwrap();
        let n_cust = c.table("customer").unwrap().rows() as i64;
        assert!(custkeys
            .as_ints()
            .unwrap()
            .iter()
            .all(|&k| (1..=n_cust).contains(&k)));
    }

    #[test]
    fn referential_integrity_lineitem_orders() {
        let c = generate_catalog(&TpchConfig::sf(0.0005));
        let n_ord = c.table("orders").unwrap().rows() as i64;
        let ok = c.column("lineitem", "l_orderkey").unwrap();
        assert!(ok
            .as_ints()
            .unwrap()
            .iter()
            .all(|&k| (1..=n_ord).contains(&k)));
    }

    #[test]
    fn dates_in_range() {
        let c = generate_catalog(&TpchConfig::sf(0.0005));
        let d = c.column("lineitem", "l_shipdate").unwrap();
        let v = d.as_dates().unwrap();
        assert!(v
            .iter()
            .all(|&x| (START_DATE..=START_DATE + DATE_SPAN + 121).contains(&x)));
    }
}
