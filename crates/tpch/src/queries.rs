//! The query texts used by examples, tests and benchmarks.
//!
//! These are TPC-H-derived queries restricted to the SQL subset the
//! `stetho-sql` front end supports (no INTERVAL arithmetic — horizon
//! dates are pre-computed; no HAVING).

/// The paper's Figure-1 example query (§2):
/// `select l_tax from lineitem where l_partkey=1`.
pub const FIGURE1: &str = "select l_tax from lineitem where l_partkey = 1";

/// TPC-H Q1 (pricing summary report), horizon pre-computed as
/// 1998-12-01 − 90 days = 1998-09-02.
pub const Q1: &str = "\
select l_returnflag, l_linestatus, \
       sum(l_quantity) as sum_qty, \
       sum(l_extendedprice) as sum_base_price, \
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
       avg(l_quantity) as avg_qty, \
       avg(l_extendedprice) as avg_price, \
       avg(l_discount) as avg_disc, \
       count(*) as count_order \
from lineitem \
where l_shipdate <= date '1998-09-02' \
group by l_returnflag, l_linestatus \
order by l_returnflag, l_linestatus";

/// TPC-H Q3 (shipping priority), segment BUILDING, cut-off 1995-03-15.
/// Revenue aggregation simplified to `sum(l_extendedprice)` plus the
/// discounted sum, since post-aggregate arithmetic is out of subset.
pub const Q3: &str = "\
select l.l_orderkey, sum(l.l_extendedprice * (1 - l.l_discount)) as revenue, \
       o.o_orderdate, o.o_shippriority \
from customer c, orders o, lineitem l \
where c.c_mktsegment = 'BUILDING' \
  and c.c_custkey = o.o_custkey \
  and l.l_orderkey = o.o_orderkey \
  and o.o_orderdate < date '1995-03-15' \
  and l.l_shipdate > date '1995-03-15' \
group by l_orderkey, o_orderdate, o_shippriority \
order by revenue desc, o_orderdate \
limit 10";

/// TPC-H Q6 (forecasting revenue change), year 1994, discount 0.05–0.07,
/// quantity < 24.
pub const Q6: &str = "\
select sum(l_extendedprice * l_discount) as revenue \
from lineitem \
where l_shipdate >= date '1994-01-01' \
  and l_shipdate < date '1995-01-01' \
  and l_discount between 0.05 and 0.07 \
  and l_quantity < 24";

/// A deliberately join- and aggregate-heavy query used by the online demo
/// as the "long running query" (§5): joins customer→orders→lineitem and
/// aggregates per market segment.
pub const LONG_RUNNING: &str = "\
select c.c_mktsegment, sum(l.l_extendedprice * (1 - l.l_discount)) as revenue, \
       count(*) as n \
from customer c, orders o, lineitem l \
where c.c_custkey = o.o_custkey and o.o_orderkey = l.l_orderkey \
group by c_mktsegment \
order by revenue desc";

/// TPC-H Q10-style (returned items report): revenue lost to returns per
/// customer, top 20.
pub const Q10: &str = "\
select c.c_custkey, c.c_name, sum(l.l_extendedprice * (1 - l.l_discount)) as revenue \
from customer c, orders o, lineitem l \
where c.c_custkey = o.o_custkey \
  and l.l_orderkey = o.o_orderkey \
  and l.l_returnflag = 'R' \
group by c_custkey, c_name \
order by revenue desc \
limit 20";

/// TPC-H Q12-style (shipping modes and order priority): line counts per
/// ship mode for two modes of interest in 1994. Exercises `IN`.
pub const Q12: &str = "\
select l_shipmode, count(*) as n \
from lineitem \
where l_shipmode in ('MAIL', 'SHIP') \
  and l_shipdate >= date '1994-01-01' \
  and l_shipdate < date '1995-01-01' \
group by l_shipmode \
order by l_shipmode";

/// TPC-H Q14-style (promotion effect): promo-part revenue for one month.
/// Exercises `LIKE`.
pub const Q14: &str = "\
select sum(l.l_extendedprice * (1 - l.l_discount)) as promo_revenue \
from lineitem l, part p \
where l.l_partkey = p.p_partkey \
  and p.p_type like 'PROMO%' \
  and l.l_shipdate >= date '1995-09-01' \
  and l.l_shipdate < date '1995-10-01'";

/// DISTINCT demo: the distinct (returnflag, linestatus) combinations.
pub const DISTINCT_FLAGS: &str = "\
select distinct l_returnflag, l_linestatus from lineitem \
order by l_returnflag, l_linestatus";

/// HAVING demo: ship modes carrying more than 100 lineitems.
pub const BUSY_SHIPMODES: &str = "\
select l_shipmode, count(*) as n from lineitem \
group by l_shipmode \
having count(*) > 100 \
order by n desc";

/// All named queries, for sweep-style benchmarks.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("figure1", FIGURE1),
        ("q1", Q1),
        ("q3", Q3),
        ("q6", Q6),
        ("q10", Q10),
        ("q12", Q12),
        ("q14", Q14),
        ("distinct_flags", DISTINCT_FLAGS),
        ("busy_shipmodes", BUSY_SHIPMODES),
        ("long_running", LONG_RUNNING),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_catalog, TpchConfig};
    use std::sync::Arc;
    use stetho_engine::{ExecOptions, Interpreter};
    use stetho_sql::compile;

    #[test]
    fn every_query_compiles_and_runs() {
        let cat = Arc::new(generate_catalog(&TpchConfig::sf(0.0005)));
        let interp = Interpreter::new(Arc::clone(&cat));
        for (name, sql) in all() {
            let q = compile(&cat, sql).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
            let out = interp
                .execute(&q.plan, &ExecOptions::default())
                .unwrap_or_else(|e| panic!("{name} failed to run: {e}"));
            assert!(out.result.is_some(), "{name} must produce a result set");
        }
    }

    #[test]
    fn q1_produces_flag_status_groups() {
        let cat = Arc::new(generate_catalog(&TpchConfig::sf(0.0005)));
        let interp = Interpreter::new(Arc::clone(&cat));
        let q = compile(&cat, Q1).unwrap();
        let r = interp
            .execute(&q.plan, &ExecOptions::default())
            .unwrap()
            .result
            .unwrap();
        // The classic Q1 answer has at most 4 (flag,status) groups.
        assert!((1..=4).contains(&r.rows()), "rows {}", r.rows());
        // sum_qty must be positive and ≥ count (quantities are ≥ 1).
        let sums = r.column("sum_qty").unwrap().as_ints().unwrap().to_vec();
        let counts = r.column("count_order").unwrap().as_ints().unwrap().to_vec();
        for (s, c) in sums.iter().zip(&counts) {
            assert!(s >= c);
        }
    }

    #[test]
    fn q6_matches_manual_computation() {
        let cat = Arc::new(generate_catalog(&TpchConfig::sf(0.0005)));
        let interp = Interpreter::new(Arc::clone(&cat));
        let q = compile(&cat, Q6).unwrap();
        let r = interp
            .execute(&q.plan, &ExecOptions::default())
            .unwrap()
            .result
            .unwrap();
        let got = r.column("revenue").unwrap().as_dbls().unwrap()[0];

        // Recompute directly from the columns.
        let ship = cat.column("lineitem", "l_shipdate").unwrap();
        let disc = cat.column("lineitem", "l_discount").unwrap();
        let qty = cat.column("lineitem", "l_quantity").unwrap();
        let price = cat.column("lineitem", "l_extendedprice").unwrap();
        let (lo, hi) = (8766, 9131); // 1994-01-01, 1995-01-01
        let mut want = 0.0;
        let ship = ship.as_dates().unwrap();
        for (i, &s) in ship.iter().enumerate() {
            let d = disc.as_dbls().unwrap()[i];
            if s >= lo && s < hi && (0.05..=0.07).contains(&d) && qty.as_ints().unwrap()[i] < 24 {
                want += price.as_dbls().unwrap()[i] * d;
            }
        }
        assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
    }

    #[test]
    fn q12_in_list_restricts_shipmodes() {
        let cat = Arc::new(generate_catalog(&TpchConfig::sf(0.001)));
        let interp = Interpreter::new(Arc::clone(&cat));
        let q = compile(&cat, Q12).unwrap();
        let r = interp
            .execute(&q.plan, &ExecOptions::default())
            .unwrap()
            .result
            .unwrap();
        assert!(r.rows() <= 2);
        for i in 0..r.rows() {
            let mode = r.column("l_shipmode").unwrap().get(i).unwrap();
            let mode = mode.as_str().unwrap().to_string();
            assert!(mode == "MAIL" || mode == "SHIP", "unexpected mode {mode}");
        }
    }

    #[test]
    fn q14_matches_manual_computation() {
        let cat = Arc::new(generate_catalog(&TpchConfig::sf(0.001)));
        let interp = Interpreter::new(Arc::clone(&cat));
        let q = compile(&cat, Q14).unwrap();
        let r = interp
            .execute(&q.plan, &ExecOptions::default())
            .unwrap()
            .result
            .unwrap();
        let got = r.column("promo_revenue").unwrap().as_dbls().unwrap()[0];

        // Manual recomputation.
        let partkeys = cat.column("lineitem", "l_partkey").unwrap();
        let prices = cat.column("lineitem", "l_extendedprice").unwrap();
        let discs = cat.column("lineitem", "l_discount").unwrap();
        let ships = cat.column("lineitem", "l_shipdate").unwrap();
        let types = cat.column("part", "p_type").unwrap();
        let ships = ships.as_dates().unwrap();
        // 1995-09-01 = 9374, 1995-10-01 = 9404.
        let mut want = 0.0;
        for (i, &s) in ships.iter().enumerate() {
            let pk = partkeys.as_ints().unwrap()[i] as usize - 1;
            let ptype = types.get(pk).unwrap();
            if (9374..9404).contains(&s) && ptype.as_str().unwrap().starts_with("PROMO") {
                want += prices.as_dbls().unwrap()[i] * (1.0 - discs.as_dbls().unwrap()[i]);
            }
        }
        assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
    }

    #[test]
    fn distinct_flags_bounded() {
        let cat = Arc::new(generate_catalog(&TpchConfig::sf(0.001)));
        let interp = Interpreter::new(Arc::clone(&cat));
        let q = compile(&cat, DISTINCT_FLAGS).unwrap();
        let r = interp
            .execute(&q.plan, &ExecOptions::default())
            .unwrap()
            .result
            .unwrap();
        // (R,F), (A,F), (N,O), (N,F) are the only possible combinations.
        assert!((1..=4).contains(&r.rows()), "rows {}", r.rows());
    }

    #[test]
    fn busy_shipmodes_all_pass_threshold() {
        let cat = Arc::new(generate_catalog(&TpchConfig::sf(0.001)));
        let interp = Interpreter::new(Arc::clone(&cat));
        let q = compile(&cat, BUSY_SHIPMODES).unwrap();
        let r = interp
            .execute(&q.plan, &ExecOptions::default())
            .unwrap()
            .result
            .unwrap();
        let ns = r.column("n").unwrap().as_ints().unwrap().to_vec();
        assert!(ns.iter().all(|&n| n > 100), "{ns:?}");
        // Sorted descending by n.
        assert!(ns.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn q3_respects_limit() {
        let cat = Arc::new(generate_catalog(&TpchConfig::sf(0.001)));
        let interp = Interpreter::new(Arc::clone(&cat));
        let q = compile(&cat, Q3).unwrap();
        let r = interp
            .execute(&q.plan, &ExecOptions::default())
            .unwrap()
            .result
            .unwrap();
        assert!(r.rows() <= 10);
        // Revenue sorted descending.
        let rev = r.column("revenue").unwrap().as_dbls().unwrap().to_vec();
        assert!(rev.windows(2).all(|w| w[0] >= w[1]));
    }
}
