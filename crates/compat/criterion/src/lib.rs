//! Offline stand-in for the `criterion` crate (see `crates/compat/`).
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with ids and throughput) over a simple wall-clock
//! timer: each benchmark runs `sample_size` timed samples after a short
//! warm-up and prints mean time per iteration. No statistics machinery,
//! no plots — just enough to keep `cargo bench` meaningful offline.
//!
//! Two extensions beyond plain timing:
//!
//! * the real criterion CLI's time knobs are honoured —
//!   `--warm-up-time <s>`, `--measurement-time <s>` and `--quick` (CI
//!   smoke runs pass these; unknown flags such as cargo's `--bench` are
//!   ignored);
//! * every reported mean is also pushed to an in-process registry,
//!   [`take_reports`], so a bench target can persist its own numbers
//!   (the workspace's `BENCH_engine.json` ledger) without re-measuring.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export point used by benches (`criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `group/<function>/<parameter>` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// `group/<parameter>` form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// One reported measurement, mirrored into the in-process registry.
#[derive(Debug, Clone)]
pub struct Report {
    /// Full benchmark path (`group/function/parameter`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
}

static REPORTS: Mutex<Vec<Report>> = Mutex::new(Vec::new());

/// Drain every measurement reported so far in this process, in
/// execution order. Bench targets call this after their groups finish
/// to persist results themselves.
pub fn take_reports() -> Vec<Report> {
    match REPORTS.lock() {
        Ok(mut g) => std::mem::take(&mut *g),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, storing the mean per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (at least one call), tracking the fastest single run
        // as the calibration estimate for sample sizing.
        let warm_start = Instant::now();
        let t0 = Instant::now();
        black_box(routine());
        let mut once = t0.elapsed().max(Duration::from_nanos(1));
        while warm_start.elapsed() < self.warm_up {
            let t = Instant::now();
            black_box(routine());
            once = once.min(t.elapsed().max(Duration::from_nanos(1)));
        }
        // Fit `samples` samples into the measurement budget.
        let sample_budget = (self.measurement / self.samples.max(1) as u32)
            .max(Duration::from_nanos(1));
        let per_sample = (sample_budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            total += t.elapsed();
            iters += per_sample as u64;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    match REPORTS.lock() {
        Ok(mut g) => g.push(Report {
            name: name.to_string(),
            mean_ns,
        }),
        Err(poisoned) => poisoned.into_inner().push(Report {
            name: name.to_string(),
            mean_ns,
        }),
    }
    let human = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("bench: {name:<50} {human:>12}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean_ns / 1e9) / (1 << 20) as f64;
            println!("bench: {name:<50} {human:>12}/iter  {rate:>10.1} MiB/s");
        }
        None => println!("bench: {name:<50} {human:>12}/iter"),
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    /// Baseline knobs (one warm-up call, 2 ms samples — the historical
    /// behaviour of this stand-in), then any criterion CLI time flags
    /// from the command line: `--warm-up-time <s>`,
    /// `--measurement-time <s>`, `--quick`. Unrecognised arguments (for
    /// example the `--bench` cargo appends) are ignored, like the real
    /// crate's lenient CLI.
    fn default() -> Self {
        let mut c = Criterion {
            sample_size: 10,
            warm_up: Duration::ZERO,
            measurement: Duration::from_millis(20),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 0;
        let secs = |s: &String| s.parse::<f64>().ok().filter(|x| *x >= 0.0);
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    c.warm_up = Duration::from_millis(250);
                    c.measurement = Duration::from_millis(500);
                    c.sample_size = 5;
                }
                "--warm-up-time" => {
                    if let Some(x) = args.get(i + 1).and_then(secs) {
                        c.warm_up = Duration::from_secs_f64(x);
                        i += 1;
                    }
                }
                "--measurement-time" => {
                    if let Some(x) = args.get(i + 1).and_then(secs) {
                        c.measurement = Duration::from_secs_f64(x);
                        i += 1;
                    }
                }
                "--sample-size" => {
                    if let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                        c.sample_size = n.max(1);
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        c
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up budget before timed samples begin.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    fn bencher(&self, samples: usize) -> Bencher {
        Bencher {
            samples,
            warm_up: self.warm_up,
            measurement: self.measurement,
            mean_ns: 0.0,
        }
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = self.bencher(self.sample_size);
        f(&mut b);
        report(name, b.mean_ns, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.criterion.bencher(self.sample_size);
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.mean_ns, self.throughput);
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.criterion.bencher(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), b.mean_ns, self.throughput);
        self
    }

    /// Finish the group (reporting already happened incrementally).
    pub fn finish(self) {}
}

/// Declare a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("compat/noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("compat/group");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }

    criterion_group!(name = benches; config = Criterion::default().sample_size(3); targets = sample_bench);
    criterion_group!(plain, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        plain();
    }

    #[test]
    fn reports_are_registered() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(4));
        c.bench_function("compat/registered", |b| b.iter(|| black_box(2 + 2)));
        let reports = take_reports();
        assert!(reports
            .iter()
            .any(|r| r.name == "compat/registered" && r.mean_ns > 0.0));
    }

    #[test]
    fn time_budgets_shape_sampling() {
        let mut b = Bencher {
            samples: 3,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(3),
            mean_ns: 0.0,
        };
        let t0 = Instant::now();
        b.iter(|| black_box(1u64.wrapping_mul(3)));
        // Warm-up plus measurement must stay in the same order of
        // magnitude as the budgets, not the old fixed 2 ms × samples.
        assert!(t0.elapsed() < Duration::from_millis(200));
        assert!(b.mean_ns > 0.0);
    }
}
