//! Offline stand-in for the `crossbeam` crate (see `crates/compat/`).
//!
//! Two modules are provided:
//!
//! * [`channel`] — an unbounded MPMC channel with crossbeam's disconnect
//!   semantics, built on a `Mutex<VecDeque>` plus a `Condvar`. Both
//!   `Sender` and `Receiver` are cloneable; `recv` returns
//!   `Err(RecvError)` once every sender is dropped and the queue has
//!   drained, which is the shutdown protocol the profiler's UDP monitor
//!   relies on.
//! * [`deque`] — the `crossbeam-deque` work-stealing interface
//!   ([`deque::Worker`] / [`deque::Stealer`] / [`deque::Injector`] /
//!   [`deque::Steal`]) used by the engine's dataflow scheduler. The
//!   implementation is lock-based rather than the lock-free Chase–Lev
//!   deque, but the API and the LIFO-owner/FIFO-thief discipline match.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] on a drained, disconnected
    /// channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            match self.state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.0.lock();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.0.ready.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Like [`Self::recv`], giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = match self.0.ready.wait_timeout(st, deadline - now) {
                    Ok(r) => r,
                    Err(poisoned) => poisoned.into_inner(),
                };
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn timeout_and_try_recv() {
            let (tx, rx) = unbounded::<i32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        }

        #[test]
        fn multi_consumer_drains_all() {
            let (tx, rx) = unbounded::<usize>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || {
                let mut got = 0;
                while rx2.recv().is_ok() {
                    got += 1;
                }
                got
            });
            let mut got = 0;
            while rx.recv().is_ok() {
                got += 1;
            }
            assert_eq!(got + h.join().unwrap(), 100);
        }

        #[test]
        fn blocked_receiver_wakes_on_send() {
            let (tx, rx) = unbounded::<i32>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
            assert_eq!(h.join().unwrap(), Ok(9));
        }
    }
}

pub mod deque {
    //! Work-stealing deques with the `crossbeam-deque` API surface.
    //!
    //! Each worker thread owns a [`Worker`] it pushes and pops from the
    //! back of (LIFO — hot, cache-warm tasks run first); thieves hold
    //! [`Stealer`] handles and take from the *front* (FIFO — the oldest,
    //! likely largest pending task migrates). An [`Injector`] is the
    //! shared entry queue for tasks produced outside any worker.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// True when the steal observed an empty queue.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The owner's end of a work-stealing deque.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops its *most recently pushed* task.
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Push a task onto the owner's end.
        pub fn push(&self, task: T) {
            lock(&self.inner).push_back(task);
        }

        /// Pop from the owner's end (LIFO).
        pub fn pop(&self) -> Option<T> {
            lock(&self.inner).pop_back()
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.inner).is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            lock(&self.inner).len()
        }

        /// A handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// A thief's handle onto some worker's deque.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steal one task from the *front* of the owner's deque.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.inner).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// True when the deque currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            lock(&self.inner).is_empty()
        }

        /// Number of tasks currently in the owner's deque.
        pub fn len(&self) -> usize {
            lock(&self.inner).len()
        }
    }

    /// A shared FIFO entry queue all workers can push to and steal from.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueue a task.
        pub fn push(&self, task: T) {
            lock(&self.inner).push_back(task);
        }

        /// Steal one task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.inner).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Move roughly half the queue (at least one task) into `dest`,
        /// returning one task immediately — crossbeam's amortised refill.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut src = lock(&self.inner);
            let first = match src.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            let extra = src.len().div_ceil(2).min(src.len());
            if extra > 0 {
                let mut dst = lock(&dest.inner);
                for t in src.drain(..extra) {
                    dst.push_back(t);
                }
            }
            Steal::Success(first)
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.inner).is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            lock(&self.inner).len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_is_lifo_thief_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal(), Steal::Success(1)); // oldest
            assert_eq!(w.pop(), Some(3)); // newest
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert!(s.steal().is_empty());
        }

        #[test]
        fn injector_batch_refills_worker() {
            let inj = Injector::new();
            for i in 0..9 {
                inj.push(i);
            }
            let w = Worker::new_lifo();
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            // Half of the remaining 8 moved across.
            assert_eq!(w.len(), 4);
            assert_eq!(inj.len(), 4);
            assert_eq!(inj.steal(), Steal::Success(5));
        }

        #[test]
        fn empty_injector_steals_empty() {
            let inj: Injector<u32> = Injector::new();
            let w = Worker::new_lifo();
            assert!(inj.steal().is_empty());
            assert!(inj.steal_batch_and_pop(&w).is_empty());
        }

        #[test]
        fn concurrent_stealing_loses_nothing() {
            let w = Worker::new_lifo();
            for i in 0..1000 {
                w.push(i);
            }
            let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
            let total: usize = std::thread::scope(|scope| {
                let handles: Vec<_> = stealers
                    .into_iter()
                    .map(|s| {
                        scope.spawn(move || {
                            let mut got = 0;
                            while let Steal::Success(_) = s.steal() {
                                got += 1;
                            }
                            got
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, 1000);
        }
    }
}
