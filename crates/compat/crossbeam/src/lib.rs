//! Offline stand-in for the `crossbeam` crate (see `crates/compat/`).
//!
//! Only the `channel` module is provided — an unbounded MPMC channel
//! with crossbeam's disconnect semantics, built on a `Mutex<VecDeque>`
//! plus a `Condvar`. Both `Sender` and `Receiver` are cloneable; `recv`
//! returns `Err(RecvError)` once every sender is dropped and the queue
//! has drained, which is exactly the shutdown protocol the engine's
//! dataflow scheduler and the profiler's UDP monitor rely on.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] on a drained, disconnected
    /// channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            match self.state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.0.lock();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.0.ready.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Like [`Self::recv`], giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = match self.0.ready.wait_timeout(st, deadline - now) {
                    Ok(r) => r,
                    Err(poisoned) => poisoned.into_inner(),
                };
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn timeout_and_try_recv() {
            let (tx, rx) = unbounded::<i32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        }

        #[test]
        fn multi_consumer_drains_all() {
            let (tx, rx) = unbounded::<usize>();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || {
                let mut got = 0;
                while rx2.recv().is_ok() {
                    got += 1;
                }
                got
            });
            let mut got = 0;
            while rx.recv().is_ok() {
                got += 1;
            }
            assert_eq!(got + h.join().unwrap(), 100);
        }

        #[test]
        fn blocked_receiver_wakes_on_send() {
            let (tx, rx) = unbounded::<i32>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
            assert_eq!(h.join().unwrap(), Ok(9));
        }
    }
}
