//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this repository builds in has no access to crates.io,
//! so the workspace ships API-compatible implementations of the handful
//! of external crates it uses (see `crates/compat/`). This one wraps
//! `std::sync` primitives behind parking_lot's non-poisoning interface:
//! `lock()` returns a guard directly (a poisoned std lock is recovered
//! rather than propagated, matching parking_lot's behaviour of not
//! poisoning at all).

use std::sync::TryLockError;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
