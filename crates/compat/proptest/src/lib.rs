//! Offline stand-in for the `proptest` crate (see `crates/compat/`).
//!
//! Same macro and strategy surface as the real crate for the subset the
//! workspace uses — `proptest!` with `#![proptest_config(...)]`,
//! integer/float range strategies, regex-subset string strategies,
//! tuples, `collection::vec`, `any::<T>()`, `prop_oneof!`, `prop_map`
//! — driven by a deterministic splitmix64 generator seeded from the
//! test name, so failures reproduce across runs. No shrinking: on
//! failure the full generated input is printed instead.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---- RNG -------------------------------------------------------------

/// Deterministic per-test generator (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test name so every test gets a stable, distinct
    /// stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi]` (inclusive).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---- strategy core ---------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous unions (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy; output of [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) alternative list.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union { alternatives }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[pick].generate(rng)
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- primitive strategies -------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, wide-range doubles; the workspace never relies on
        // NaN/inf generation.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy for any value of `T` (the real crate's `any::<T>()`).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Build the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// ---- string (regex-subset) strategies -------------------------------

/// One atom of the supported pattern subset.
enum Atom {
    /// Literal character.
    Lit(char),
    /// Character class (already expanded).
    Class(Vec<char>),
}

/// Parse the regex subset used in strategies: literal chars, `[...]`
/// classes with ranges and `\n`/`\t`/`\\` escapes, and counted
/// repetition `{n}` / `{lo,hi}` after an atom.
fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // Range like `a-z` (a `-` right before `]` is literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = if chars[i + 2] == '\\' {
                            i += 1;
                            unescape(chars[i + 2])
                        } else {
                            chars[i + 2]
                        };
                        for code in (c as u32)..=(hi as u32) {
                            set.extend(char::from_u32(code));
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern `{pattern}`");
                i += 1; // closing ]
                assert!(!set.is_empty(), "empty class in pattern `{pattern}`");
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // Optional counted repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition bound"),
                    hi.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse_pattern(self) {
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                match &atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                }
            }
        }
        out
    }
}

// ---- tuple strategies ------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

// ---- collections -----------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Vec of values from `element`, with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let n = self.size.lo + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- config and macros ----------------------------------------------

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Override the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs,
/// printing the failing input on panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            let strategy = ($($strategy,)+);
            for case in 0..config.cases {
                let values = $crate::Strategy::generate(&strategy, &mut rng);
                let shown = format!("{:?}", values);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let ($($arg,)+) = values;
                        $body
                    }),
                );
                if let Err(panic) = outcome {
                    let cause = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    panic!(
                        "proptest {}: case {}/{} failed\n  input: {}\n  cause: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        shown,
                        cause
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_respect_class_and_bounds() {
        let mut rng = crate::TestRng::from_name("strings");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));

            let p = Strategy::generate(&"[ -~]{0,10}", &mut rng);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));

            let nl = Strategy::generate(&"[ -~\n]{1,40}", &mut rng);
            assert!(nl.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_oneof_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        let strat = prop_oneof![(0i64..10).prop_map(|v| v), (100i64..110).prop_map(|v| v),];
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((0..10).contains(&v) || (100..110).contains(&v));
            low |= v < 10;
            high |= v >= 100;
        }
        assert!(low && high, "both alternatives should be drawn");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_obey_size(v in crate::collection::vec(any::<u64>(), 3..7)) {
            prop_assert!((3..=6).contains(&v.len()));
        }

        #[test]
        fn exact_size_is_exact(v in crate::collection::vec(0usize..5, 4usize)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert_ne!(v.len(), 5);
        }

        #[test]
        fn tuples_compose(t in (any::<bool>(), 0u32..4, "[xy]{1,2}")) {
            prop_assert!(t.1 < 4);
            prop_assert!(!t.2.is_empty());
        }
    }
}
