//! Offline stand-in for the `serde` crate (see `crates/compat/`).
//!
//! Real serde is a zero-copy, visitor-based framework; this stand-in is
//! a much simpler value-tree design that preserves the *surface* the
//! workspace uses: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums, and `serde_json::{to_string_pretty, from_str, Value}`.
//! Types serialise into a [`Value`] tree (the same tree `serde_json`
//! re-exports) and deserialise back out of it. The derive macro lives in
//! the sibling `serde_derive` crate and generates `to_value`/`from_value`
//! bodies directly — no proc-macro dependencies required.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer number.
    Int(i64),
    /// Unsigned integer number too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric content as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// Numeric content as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 1.9e19 => Some(*f as u64),
            _ => None,
        }
    }

    /// Numeric content as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Int(i) => *i == *other as i64,
                    Value::UInt(u) => i64::try_from(*u).map(|u| u == *other as i64).unwrap_or(false),
                    Value::Float(f) => *f == *other as f64,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Float(f) if f == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

/// Types that can serialise themselves into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Deserialisation error: a human-readable mismatch description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error noting what was expected vs found.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {found:?}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

// ---- impls for primitives and std containers ------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("bool", value))
    }
}

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let i = value.as_i64().ok_or_else(|| DeError::expected("integer", value))?;
                <$t>::try_from(i).map_err(|_| DeError::expected(stringify!($t), value))
            }
        }
    )*};
}

serde_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let u = value.as_u64().ok_or_else(|| DeError::expected("unsigned integer", value))?;
                <$t>::try_from(u).map_err(|_| DeError::expected(stringify!($t), value))
            }
        }
    )*};
}

serde_uint!(u64, usize);

macro_rules! serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                value.as_f64().map(|f| f as $t).ok_or_else(|| DeError::expected("number", value))
            }
        }
    )*};
}

serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_array().ok_or_else(|| DeError::expected("tuple array", value))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(DeError(format!("expected {expect}-tuple, found {} items", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors_and_indexing() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(3)),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v["a"], 3);
        assert_eq!(v["b"][0], true);
        assert!(v["missing"].is_null());
        assert_eq!(v["b"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            <(usize, usize)>::from_value(&(3usize, 5usize).to_value()),
            Ok((3, 5))
        );
        assert_eq!(
            Vec::<i32>::from_value(&vec![1i32, 2].to_value()),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn mismatches_error() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}
