//! Offline stand-in for the `serde_json` crate (see `crates/compat/`).
//!
//! JSON text on top of the compat `serde` value tree: a pretty-printer
//! (2-space indent, matching serde_json's `to_string_pretty` layout)
//! and a recursive-descent parser with full string-escape handling.
//! Floats are printed via Rust's shortest-round-trip formatting, so
//! `f64 → text → f64` is lossless for finite values.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON error: a position-annotated message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialise to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type (including [`Value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

// ---- printer ---------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let text = f.to_string();
                out.push_str(&text);
                // Keep the number a float on re-parse.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uDC00..\uDFFF next.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // continuation bytes are always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let step = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(std::str::from_utf8(&rest[..step]).expect("utf8 input"));
                    self.pos += step;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.bytes.len() < self.pos + 4 {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Camera {
        x: f64,
        y: f64,
        label: String,
        zoom: Option<u64>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Shade {
        Plain,
        Bright,
        Gradient { t: f64 },
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Scene {
        cameras: Vec<Camera>,
        shade: Shade,
        tags: Vec<String>,
        span: Option<(usize, usize)>,
    }

    fn sample() -> Scene {
        Scene {
            cameras: vec![
                Camera {
                    x: 1.5,
                    y: -2.25,
                    label: "front \"main\"\nline2".into(),
                    zoom: Some(3),
                },
                Camera {
                    x: 1e300,
                    y: 0.1,
                    label: "ünïcode ✓".into(),
                    zoom: None,
                },
            ],
            shade: Shade::Gradient { t: 0.75 },
            tags: vec!["a".into(), String::new()],
            span: Some((2, 9)),
        }
    }

    #[test]
    fn derive_round_trip() {
        let scene = sample();
        let json = to_string_pretty(&scene).unwrap();
        let back: Scene = from_str(&json).unwrap();
        assert_eq!(back, scene);
    }

    #[test]
    fn unit_variants_round_trip() {
        for shade in [Shade::Plain, Shade::Bright] {
            let json = to_string(&shade).unwrap();
            let back: Shade = from_str(&json).unwrap();
            assert_eq!(back, shade);
        }
    }

    #[test]
    fn value_indexing_through_text() {
        let json = to_string_pretty(&sample()).unwrap();
        let v: Value = from_str(&json).unwrap();
        assert_eq!(v["cameras"][0]["zoom"], 3);
        assert_eq!(v["cameras"][1]["label"], "ünïcode ✓");
        assert!(v["cameras"][1]["zoom"].is_null());
        assert_eq!(v["shade"]["Gradient"]["t"], 0.75);
        assert_eq!(v["tags"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_layout_is_indented() {
        let json = to_string_pretty(&Value::Object(vec![(
            "k".into(),
            Value::Array(vec![Value::Int(1)]),
        )]))
        .unwrap();
        assert_eq!(json, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v: Value = from_str(r#"{"s": "aé\n\"b\" 😀"}"#).unwrap();
        assert_eq!(v["s"], "aé\n\"b\" 😀");
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2] trailing").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn numbers_keep_their_kind() {
        let v: Value = from_str("[-3, 18446744073709551615, 2.5, 1e300]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0], Value::Int(-3));
        assert_eq!(items[1], Value::UInt(u64::MAX));
        assert_eq!(items[2], Value::Float(2.5));
        assert_eq!(items[3], Value::Float(1e300));
    }

    #[test]
    fn float_round_trip_is_lossless() {
        for f in [0.1, 1.0 / 3.0, 123456.789, f64::MIN_POSITIVE, 1e300] {
            let json = to_string(&Value::Float(f)).unwrap();
            let back: Value = from_str(&json).unwrap();
            assert_eq!(back, Value::Float(f), "via {json}");
        }
    }
}
