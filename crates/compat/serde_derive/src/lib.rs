//! Offline stand-in for `serde_derive` (see `crates/compat/`).
//!
//! Real serde_derive builds on `syn`/`quote`; neither is available
//! offline, so this macro parses the item's token stream by hand and
//! emits the impl source as a string. It supports exactly the shapes
//! this workspace derives on — non-generic structs with named fields,
//! and enums whose variants are unit or struct-like — and panics with a
//! clear message on anything else rather than mis-compiling it.
//!
//! Representation matches serde's externally-tagged default:
//! - struct          → `{"field": value, ...}`
//! - unit variant    → `"Variant"`
//! - struct variant  → `{"Variant": {"field": value, ...}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Derive `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    src.parse()
        .expect("serde compat derive generated invalid Rust")
}

/// Derive `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    src.parse()
        .expect("serde compat derive generated invalid Rust")
}

// ---- item model ------------------------------------------------------

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        /// `(variant, None)` = unit, `(variant, Some(fields))` = struct-like.
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

// ---- token-stream parsing -------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip leading `#[...]` attributes (incl. doc comments) and `pub` /
/// `pub(...)` visibility.
fn skip_attrs_and_vis(iter: &mut Tokens) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde compat derive: malformed attribute near {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde compat derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde compat derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde compat derive does not support generic type `{name}`");
        }
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            panic!("serde compat derive supports only brace-bodied items; `{name}` has {other:?}")
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        k => panic!("serde compat derive: expected `struct` or `enum`, found `{k}`"),
    }
}

/// Parse `name: Type, ...` field lists, returning the field names.
/// Commas inside angle brackets (`BTreeMap<String, u64>`) are part of
/// the type; delimited groups hide their own commas from us already.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let field = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde compat derive: expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde compat derive: expected `:` after `{field}`, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        iter.next();
                        break;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
        fields.push(field);
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<(String, Option<Vec<String>>)> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let variant = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde compat derive: expected variant name, found {other:?}"),
        };
        match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                variants.push((variant, Some(fields)));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde compat derive: tuple variant `{variant}` is not supported");
            }
            _ => variants.push((variant, None)),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("serde compat derive: expected `,` after a variant, found {other:?}"),
        }
    }
    variants
}

// ---- code generation -------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut pairs = String::new();
    for f in fields {
        pairs.push_str(&format!(
            "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{pairs}])\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(\
                 value.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                 .map_err(|e| ::serde::DeError(format!(\"{name}.{f}: {{e}}\")))?,"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if value.as_object().is_none() {{\n\
                     return ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"object for {name}\", value));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Option<Vec<String>>)]) -> String {
    let mut arms = String::new();
    for (variant, fields) in variants {
        match fields {
            None => arms.push_str(&format!(
                "{name}::{variant} => ::serde::Value::String(\"{variant}\".to_string()),"
            )),
            Some(fields) => {
                let bindings = fields.join(", ");
                let mut pairs = String::new();
                for f in fields {
                    pairs.push_str(&format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{variant} {{ {bindings} }} => ::serde::Value::Object(vec![(\
                         \"{variant}\".to_string(), \
                         ::serde::Value::Object(vec![{pairs}]))]),"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Option<Vec<String>>)]) -> String {
    let mut unit_arms = String::new();
    let mut struct_arms = String::new();
    for (variant, fields) in variants {
        match fields {
            None => unit_arms.push_str(&format!(
                "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),"
            )),
            Some(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             inner.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| ::serde::DeError(\
                                 format!(\"{name}::{variant}.{f}: {{e}}\")))?,"
                    ));
                }
                struct_arms.push_str(&format!(
                    "\"{variant}\" => ::std::result::Result::Ok(\
                         {name}::{variant} {{ {inits} }}),"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match value {{\n\
                     ::serde::Value::String(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError(\
                             format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {struct_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError(\
                                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"{name} variant\", other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
