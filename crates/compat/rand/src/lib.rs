//! Offline stand-in for the `rand` crate (see `crates/compat/`).
//!
//! Provides the slice of the rand 0.8 API this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` /
//! `Rng::gen_bool` over integer and float ranges. The generator is
//! xoshiro256** seeded via splitmix64 — high-quality, deterministic,
//! and stable across platforms, which is what the TPC-H data generator
//! needs for reproducible fixtures.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, rand-style.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from a `lo..hi` or `lo..=hi` range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sample_unit_f64(word: u64) -> f64 {
    // 53 high bits → [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Standard generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — the default deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let unit = sample_unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0..100i64) == c.gen_range(0..100i64))
            .count();
        assert!(same < 30, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(10..20i64);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(1..=7usize);
            assert!((1..=7).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let n = rng.gen_range(-50..50i32);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn bounds_cover_full_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0..5u8));
        }
        assert_eq!(seen.len(), 5);
    }
}
