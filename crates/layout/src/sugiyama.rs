//! Layered (Sugiyama-style) layout.
//!
//! Pipeline: cycle breaking (DFS back-edge reversal) → longest-path
//! layering → dummy nodes for edges spanning multiple layers → iterative
//! barycenter crossing reduction → coordinate assignment with per-layer
//! centring. Good enough to make 1000+-node MAL dataflow graphs readable,
//! which is all GraphViz was doing for the original tool.

use stetho_dot::{Graph, NodeId};

use crate::scene::{SceneEdge, SceneGraph, SceneNode};

/// Layout tuning knobs.
#[derive(Debug, Clone)]
pub struct LayoutOptions {
    /// Barycenter sweep iterations (0 = initial order only; the
    /// `ablate_layout_sweeps` bench measures this knob).
    pub sweeps: usize,
    /// Horizontal gap between node boxes.
    pub h_gap: f64,
    /// Vertical gap between layers.
    pub v_gap: f64,
    /// Pixels per label character (box sizing).
    pub char_w: f64,
    /// Node box height.
    pub node_h: f64,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            sweeps: 4,
            h_gap: 24.0,
            v_gap: 60.0,
            char_w: 7.0,
            node_h: 28.0,
        }
    }
}

/// Internal node: real or dummy (a bend point of a long edge).
#[derive(Debug, Clone)]
struct LNode {
    /// Index into the dot graph for real nodes.
    real: Option<usize>,
    layer: usize,
    /// Position within the layer (ordering slot).
    order: usize,
    x: f64,
}

/// Lay out a dot graph into a scene graph.
pub fn layout(graph: &Graph, opts: &LayoutOptions) -> SceneGraph {
    let n = graph.node_count();
    if n == 0 {
        return SceneGraph::default();
    }

    // --- cycle breaking: reverse back edges found by DFS ---
    let succs = graph.successors();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut edges: Vec<(usize, usize, usize)> = Vec::new(); // (from, to, original edge idx)
    let mut reversed: Vec<bool> = vec![false; graph.edge_count()];
    {
        // Iterative DFS to find back edges.
        for root in 0..n {
            if state[root] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            state[root] = 1;
            while let Some(&mut (v, ref mut i)) = stack.last_mut() {
                if *i < succs[v].len() {
                    let w = succs[v][*i].0;
                    *i += 1;
                    if state[w] == 0 {
                        state[w] = 1;
                        stack.push((w, 0));
                    } else if state[w] == 1 {
                        // Back edge v->w: mark for reversal.
                        for (ei, e) in graph.edges().iter().enumerate() {
                            if e.from.0 == v && e.to.0 == w && !reversed[ei] {
                                reversed[ei] = true;
                                break;
                            }
                        }
                    }
                } else {
                    state[v] = 2;
                    stack.pop();
                }
            }
        }
        for (ei, e) in graph.edges().iter().enumerate() {
            if reversed[ei] {
                edges.push((e.to.0, e.from.0, ei));
            } else {
                edges.push((e.from.0, e.to.0, ei));
            }
        }
        // Self loops cannot be layered; drop them from layout routing.
        edges.retain(|(f, t, _)| f != t);
    }

    // --- layering: longest path from sources ---
    let mut layer = vec![0usize; n];
    {
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(f, t, _) in &edges {
            adj[f].push(t);
            indeg[t] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut qi = 0;
        while qi < queue.len() {
            let v = queue[qi];
            qi += 1;
            for &w in &adj[v] {
                layer[w] = layer[w].max(layer[v] + 1);
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
    }
    let n_layers = layer.iter().copied().max().unwrap_or(0) + 1;

    // --- build internal node list with dummies for long edges ---
    let mut lnodes: Vec<LNode> = (0..n)
        .map(|i| LNode {
            real: Some(i),
            layer: layer[i],
            order: 0,
            x: 0.0,
        })
        .collect();
    // Each routed edge: chain of internal node indices from source to
    // target (inclusive), plus the original edge index.
    let mut routes: Vec<(Vec<usize>, usize)> = Vec::with_capacity(edges.len());
    for &(f, t, ei) in &edges {
        let (lf, lt) = (lnodes[f].layer, lnodes[t].layer);
        let mut chain = vec![f];
        if lt > lf + 1 {
            for l in (lf + 1)..lt {
                let idx = lnodes.len();
                lnodes.push(LNode {
                    real: None,
                    layer: l,
                    order: 0,
                    x: 0.0,
                });
                chain.push(idx);
            }
        }
        chain.push(t);
        routes.push((chain, ei));
    }

    // Layer membership lists (initial order = creation order).
    let mut layers: Vec<Vec<usize>> = vec![Vec::new(); n_layers];
    for (i, ln) in lnodes.iter().enumerate() {
        layers[ln.layer].push(i);
    }
    for l in &layers {
        for (slot, &i) in l.iter().enumerate() {
            lnodes[i].order = slot;
        }
    }

    // Chain adjacency for ordering: consecutive pairs in each route.
    let mut up_adj: Vec<Vec<usize>> = vec![Vec::new(); lnodes.len()]; // neighbours one layer above
    let mut down_adj: Vec<Vec<usize>> = vec![Vec::new(); lnodes.len()];
    for (chain, _) in &routes {
        for pair in chain.windows(2) {
            down_adj[pair[0]].push(pair[1]);
            up_adj[pair[1]].push(pair[0]);
        }
    }

    // --- barycenter ordering sweeps ---
    for _ in 0..opts.sweeps {
        // Top-down.
        for layer in layers.iter_mut().skip(1) {
            reorder_layer(&mut lnodes, layer, &up_adj);
        }
        // Bottom-up.
        let last = n_layers.saturating_sub(1);
        for layer in layers[..last].iter_mut().rev() {
            reorder_layer(&mut lnodes, layer, &down_adj);
        }
    }

    // --- coordinate assignment ---
    let node_w = |ln: &LNode| -> f64 {
        match ln.real {
            Some(i) => {
                let label = graph.label(NodeId(i));
                (label.len() as f64 * opts.char_w + 16.0).max(40.0)
            }
            None => 1.0,
        }
    };
    let mut max_width = 0.0f64;
    let mut layer_widths = vec![0.0f64; n_layers];
    for (l, members) in layers.iter().enumerate() {
        let mut w = 0.0;
        for &i in members {
            w += node_w(&lnodes[i]) + opts.h_gap;
        }
        layer_widths[l] = w;
        max_width = max_width.max(w);
    }
    for (l, members) in layers.iter().enumerate() {
        let mut x = (max_width - layer_widths[l]) / 2.0 + opts.h_gap;
        for &i in members {
            let w = node_w(&lnodes[i]);
            lnodes[i].x = x + w / 2.0;
            x += w + opts.h_gap;
        }
    }

    // --- emit scene graph ---
    let y_of =
        |l: usize| opts.v_gap / 2.0 + opts.node_h / 2.0 + l as f64 * (opts.node_h + opts.v_gap);
    let mut scene = SceneGraph {
        width: max_width + opts.h_gap * 2.0,
        height: y_of(n_layers - 1) + opts.node_h / 2.0 + opts.v_gap / 2.0,
        ..Default::default()
    };
    // Real nodes keep their dot-graph indices (scene index == dot index).
    for (i, ln) in lnodes.iter().enumerate().take(n) {
        let gnode = graph.node(NodeId(i));
        scene.nodes.push(SceneNode {
            name: gnode.name.clone(),
            label: graph.label(NodeId(i)).to_string(),
            x: ln.x,
            y: y_of(ln.layer),
            w: node_w(ln),
            h: opts.node_h,
        });
    }
    for (chain, ei) in &routes {
        let e = &graph.edges()[*ei];
        let rev = {
            // Route chain starts at the (possibly reversed) source.
            chain[0] != e.from.0
        };
        let mut points: Vec<(f64, f64)> = chain
            .iter()
            .map(|&i| (lnodes[i].x, y_of(lnodes[i].layer)))
            .collect();
        if rev {
            points.reverse();
        }
        scene.edges.push(SceneEdge {
            from: e.from.0,
            to: e.to.0,
            points,
            label: e.attrs.get("label").cloned(),
        });
    }
    scene
}

fn reorder_layer(lnodes: &mut [LNode], members: &mut Vec<usize>, adj: &[Vec<usize>]) {
    let mut keyed: Vec<(f64, usize)> = members
        .iter()
        .map(|&i| {
            let ns = &adj[i];
            let bc = if ns.is_empty() {
                lnodes[i].order as f64
            } else {
                ns.iter().map(|&p| lnodes[p].order as f64).sum::<f64>() / ns.len() as f64
            };
            (bc, i)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    members.clear();
    for (slot, (_, i)) in keyed.into_iter().enumerate() {
        lnodes[i].order = slot;
        members.push(i);
    }
}

/// Count edge crossings in a scene graph (quality metric for tests and
/// the sweep-count ablation).
pub fn crossings(scene: &SceneGraph) -> usize {
    // Count segment-pair inversions between consecutive layers using the
    // polyline segments.
    let mut segs: Vec<((f64, f64), (f64, f64))> = Vec::new();
    for e in &scene.edges {
        for w in e.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (top, bot) = if a.1 <= b.1 { (a, b) } else { (b, a) };
            segs.push((top, bot));
        }
    }
    let mut count = 0;
    for i in 0..segs.len() {
        for j in (i + 1)..segs.len() {
            let (a, b) = (segs[i], segs[j]);
            // Same layer band?
            if (a.0 .1 - b.0 .1).abs() > 1e-6 || (a.1 .1 - b.1 .1).abs() > 1e-6 {
                continue;
            }
            let d_top = a.0 .0 - b.0 .0;
            let d_bot = a.1 .0 - b.1 .0;
            if d_top * d_bot < 0.0 {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use stetho_dot::Graph;

    fn mk_graph(nodes: usize, edges: &[(usize, usize)]) -> Graph {
        let mut g = Graph::new("t");
        for i in 0..nodes {
            g.add_node(format!("n{i}"), HashMap::new()).unwrap();
        }
        for &(f, t) in edges {
            g.add_edge(NodeId(f), NodeId(t), HashMap::new()).unwrap();
        }
        g
    }

    #[test]
    fn empty_graph() {
        let s = layout(&Graph::new("e"), &LayoutOptions::default());
        assert!(s.nodes.is_empty());
    }

    #[test]
    fn chain_layers_vertically() {
        let g = mk_graph(3, &[(0, 1), (1, 2)]);
        let s = layout(&g, &LayoutOptions::default());
        assert!(s.nodes[0].y < s.nodes[1].y);
        assert!(s.nodes[1].y < s.nodes[2].y);
        assert!(s.in_bounds());
    }

    #[test]
    fn edges_point_downward_for_dags() {
        let g = mk_graph(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)]);
        let s = layout(&g, &LayoutOptions::default());
        for e in &s.edges {
            assert!(
                s.nodes[e.from].y < s.nodes[e.to].y,
                "edge {} -> {} must go down",
                e.from,
                e.to
            );
        }
    }

    #[test]
    fn long_edges_get_bend_points() {
        // 0 -> 1 -> 2 -> 3 and a long edge 0 -> 3 spanning 3 layers.
        let g = mk_graph(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let s = layout(&g, &LayoutOptions::default());
        let long = s
            .edges
            .iter()
            .find(|e| e.from == 0 && e.to == 3)
            .expect("long edge present");
        assert_eq!(long.points.len(), 4, "2 dummies + endpoints");
    }

    #[test]
    fn no_nans_and_positive_extent() {
        let g = mk_graph(
            10,
            &[
                (0, 5),
                (1, 5),
                (2, 6),
                (3, 6),
                (4, 7),
                (5, 8),
                (6, 8),
                (7, 9),
            ],
        );
        let s = layout(&g, &LayoutOptions::default());
        assert!(s.width > 0.0 && s.height > 0.0);
        for n in &s.nodes {
            assert!(n.x.is_finite() && n.y.is_finite());
        }
        for e in &s.edges {
            for p in &e.points {
                assert!(p.0.is_finite() && p.1.is_finite());
            }
        }
    }

    #[test]
    fn cycles_are_tolerated() {
        let g = mk_graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = layout(&g, &LayoutOptions::default());
        assert_eq!(s.nodes.len(), 3);
        assert_eq!(s.edges.len(), 3);
        assert!(s.in_bounds());
    }

    #[test]
    fn sweeps_reduce_crossings() {
        // Bipartite graph wired to cross badly in insertion order:
        // tops 0..6 connect to bottoms in reverse.
        let mut edges = Vec::new();
        let k = 6;
        for i in 0..k {
            edges.push((i, k + (k - 1 - i)));
            edges.push((i, k + (i + 1) % k));
        }
        let g = mk_graph(2 * k, &edges);
        let none = crossings(&layout(
            &g,
            &LayoutOptions {
                sweeps: 0,
                ..Default::default()
            },
        ));
        let some = crossings(&layout(&g, &LayoutOptions::default()));
        assert!(
            some <= none,
            "barycenter sweeps must not increase crossings ({none} -> {some})"
        );
        assert!(
            some < none,
            "expected strict improvement ({none} -> {some})"
        );
    }

    #[test]
    fn disconnected_components_all_placed() {
        let g = mk_graph(4, &[(0, 1)]);
        let s = layout(&g, &LayoutOptions::default());
        assert_eq!(s.nodes.len(), 4);
        assert!(s.in_bounds());
    }

    #[test]
    fn self_loop_does_not_crash() {
        let g = mk_graph(2, &[(0, 0), (0, 1)]);
        let s = layout(&g, &LayoutOptions::default());
        assert_eq!(s.nodes.len(), 2);
    }

    #[test]
    fn thousand_node_graph_lays_out() {
        // Claim 5: >1000 nodes. Build a mitosis-like wide DAG.
        let mut edges = Vec::new();
        let width = 64;
        let depth = 16;
        let id = |d: usize, w: usize| 1 + d * width + w;
        for w in 0..width {
            edges.push((0, id(0, w)));
            for d in 0..depth - 1 {
                edges.push((id(d, w), id(d + 1, w)));
            }
        }
        let n = 1 + width * depth;
        assert!(n > 1000);
        let g = mk_graph(n, &edges);
        let t0 = std::time::Instant::now();
        let s = layout(&g, &LayoutOptions::default());
        assert_eq!(s.nodes.len(), n);
        assert!(s.in_bounds());
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "layout of 1000 nodes must stay interactive"
        );
    }
}
