//! # stetho-layout — graph layout and the SVG pipeline
//!
//! The paper's workflow (§4): "As a first step the dot file gets parsed
//! and an intermediate scalar vector graphics (svg) representation gets
//! created. In the next step, the svg file gets parsed and an in memory
//! graph structure gets created." GraphViz performed both steps for the
//! original Stethoscope; this crate is our GraphViz:
//!
//! * [`sugiyama`] — a layered (Sugiyama-style) layout: cycle breaking,
//!   longest-path layering, dummy-node insertion for long edges,
//!   barycenter crossing reduction, and coordinate assignment;
//! * [`scene`] — the positioned *scene graph* the viewer navigates;
//! * [`svg`] — an SVG writer and a parser that reads the SVG back into a
//!   scene graph, completing the paper's (seemingly redundant but
//!   faithfully reproduced) dot → svg → in-memory-graph round trip.
//!
//! Claim 5 of the paper — "support for large query plans with graph
//! representation of more than 1000 nodes" — is exercised against this
//! crate by the `layout_scaling` benchmark.

pub mod scene;
pub mod sugiyama;
pub mod svg;

pub use scene::{SceneEdge, SceneGraph, SceneNode};
pub use sugiyama::{layout, LayoutOptions};
pub use svg::{parse_svg, write_svg, SvgError};
