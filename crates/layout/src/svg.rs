//! SVG writer and parser.
//!
//! The writer emits one `<g class="node">` per node (rect + text) and one
//! `<polyline class="edge">` per edge, with `data-*` attributes carrying
//! the structural information the parser needs to rebuild the scene graph
//! — mirroring how the original Stethoscope parsed GraphViz's SVG output
//! back into an in-memory graph structure (§4).

use std::fmt;
use std::fmt::Write as _;

use crate::scene::{SceneEdge, SceneGraph, SceneNode};

/// SVG parse errors.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgError {
    /// Explanation.
    pub msg: String,
}

impl fmt::Display for SvgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svg parse error: {}", self.msg)
    }
}

impl std::error::Error for SvgError {}

fn err(msg: impl Into<String>) -> SvgError {
    SvgError { msg: msg.into() }
}

/// Per-node fill colors for rendering execution state; plain scenes use
/// the default fill.
#[derive(Debug, Clone, Default)]
pub struct NodeStyles {
    /// (node index, css color) overrides.
    pub fills: Vec<(usize, String)>,
}

/// Render a scene graph as SVG.
pub fn write_svg(scene: &SceneGraph) -> String {
    write_svg_styled(scene, &NodeStyles::default())
}

/// Render with per-node fill overrides (used for RED/GREEN execution
/// state frames).
pub fn write_svg_styled(scene: &SceneGraph, styles: &NodeStyles) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.1}" height="{:.1}" viewBox="0 0 {:.1} {:.1}">"#,
        scene.width, scene.height, scene.width, scene.height
    );
    for e in &scene.edges {
        let pts: Vec<String> = e
            .points
            .iter()
            .map(|(x, y)| format!("{x:.1},{y:.1}"))
            .collect();
        let label_attr = match &e.label {
            Some(l) => format!(r#" data-label="{}""#, esc(l)),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            r##"  <polyline class="edge" data-from="{}" data-to="{}"{} points="{}" fill="none" stroke="#555"/>"##,
            e.from,
            e.to,
            label_attr,
            pts.join(" ")
        );
    }
    for (i, n) in scene.nodes.iter().enumerate() {
        let fill = styles
            .fills
            .iter()
            .rev()
            .find(|(idx, _)| *idx == i)
            .map(|(_, c)| c.as_str())
            .unwrap_or("#f0f0f0");
        let _ = writeln!(out, r#"  <g class="node" id="{}">"#, esc(&n.name));
        let _ = writeln!(
            out,
            r##"    <rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{}" stroke="#222"/>"##,
            n.x - n.w / 2.0,
            n.y - n.h / 2.0,
            n.w,
            n.h,
            fill
        );
        let _ = writeln!(
            out,
            r#"    <text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="11">{}</text>"#,
            n.x,
            n.y + 4.0,
            esc(&n.label)
        );
        let _ = writeln!(out, "  </g>");
    }
    out.push_str("</svg>\n");
    out
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unesc(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&amp;", "&")
}

/// Parse SVG produced by [`write_svg`] back into a scene graph.
pub fn parse_svg(text: &str) -> Result<SceneGraph, SvgError> {
    let mut scene = SceneGraph::default();
    let mut pending_node: Option<SceneNode> = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("<svg") {
            scene.width = attr_f(rest, "width").ok_or_else(|| err("svg width"))?;
            scene.height = attr_f(rest, "height").ok_or_else(|| err("svg height"))?;
        } else if let Some(rest) = line.strip_prefix("<polyline") {
            let from = attr(rest, "data-from")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("edge data-from"))?;
            let to = attr(rest, "data-to")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("edge data-to"))?;
            let pts_text = attr(rest, "points").ok_or_else(|| err("edge points"))?;
            let mut points = Vec::new();
            for p in pts_text.split_whitespace() {
                let (x, y) = p.split_once(',').ok_or_else(|| err("bad point"))?;
                points.push((
                    x.parse().map_err(|_| err("bad x"))?,
                    y.parse().map_err(|_| err("bad y"))?,
                ));
            }
            scene.edges.push(SceneEdge {
                from,
                to,
                points,
                label: attr(rest, "data-label").map(|s| unesc(&s)),
            });
        } else if let Some(rest) = line.strip_prefix("<g class=\"node\"") {
            let name = attr(rest, "id").ok_or_else(|| err("node id"))?;
            pending_node = Some(SceneNode {
                name: unesc(&name),
                label: String::new(),
                x: 0.0,
                y: 0.0,
                w: 0.0,
                h: 0.0,
            });
        } else if let Some(rest) = line.strip_prefix("<rect") {
            if let Some(node) = pending_node.as_mut() {
                let x = attr_f(rest, "x").ok_or_else(|| err("rect x"))?;
                let y = attr_f(rest, "y").ok_or_else(|| err("rect y"))?;
                let w = attr_f(rest, "width").ok_or_else(|| err("rect width"))?;
                let h = attr_f(rest, "height").ok_or_else(|| err("rect height"))?;
                node.w = w;
                node.h = h;
                node.x = x + w / 2.0;
                node.y = y + h / 2.0;
            }
        } else if line.starts_with("<text") {
            if let Some(node) = pending_node.as_mut() {
                let start = line.find('>').ok_or_else(|| err("text body"))?;
                let end = line.rfind("</text>").ok_or_else(|| err("text close"))?;
                if start < end {
                    node.label = unesc(&line[start + 1..end]);
                }
            }
        } else if line.starts_with("</g>") {
            if let Some(node) = pending_node.take() {
                scene.nodes.push(node);
            }
        }
    }
    if pending_node.is_some() {
        return Err(err("unterminated node group"));
    }
    Ok(scene)
}

fn attr(s: &str, name: &str) -> Option<String> {
    let pat = format!("{name}=\"");
    let start = s.find(&pat)? + pat.len();
    let end = s[start..].find('"')? + start;
    Some(s[start..end].to_string())
}

fn attr_f(s: &str, name: &str) -> Option<f64> {
    attr(s, name)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sugiyama::{layout, LayoutOptions};
    use std::collections::HashMap;
    use stetho_dot::{Graph, NodeId};

    fn scene() -> SceneGraph {
        let mut g = Graph::new("t");
        let mut attrs = HashMap::new();
        attrs.insert("label".to_string(), "X_0 := sql.mvc();".to_string());
        g.add_node("n0", attrs).unwrap();
        g.add_node("n1", HashMap::new()).unwrap();
        g.add_node("n2", HashMap::new()).unwrap();
        let mut e = HashMap::new();
        e.insert("label".to_string(), "X_0".to_string());
        g.add_edge(NodeId(0), NodeId(1), e).unwrap();
        g.add_edge(NodeId(0), NodeId(2), HashMap::new()).unwrap();
        layout(&g, &LayoutOptions::default())
    }

    #[test]
    fn svg_contains_nodes_and_edges() {
        let svg = write_svg(&scene());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains(r#"<g class="node" id="n0">"#));
        assert!(svg.matches("<polyline").count() == 2);
        assert!(svg.contains("sql.mvc()"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let s = scene();
        let svg = write_svg(&s);
        let back = parse_svg(&svg).unwrap();
        assert_eq!(back.nodes.len(), s.nodes.len());
        assert_eq!(back.edges.len(), s.edges.len());
        assert_eq!(back.width, s.width);
        for (a, b) in back.nodes.iter().zip(&s.nodes) {
            assert_eq!(a.name, b.name);
            assert!((a.x - b.x).abs() < 0.1);
            assert!((a.y - b.y).abs() < 0.1);
            assert!((a.w - b.w).abs() < 0.1);
        }
        for (a, b) in back.edges.iter().zip(&s.edges) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(a.points.len(), b.points.len());
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn labels_escape_round_trip() {
        let mut s = scene();
        s.nodes[0].label = "a < b & \"c\" > d".to_string();
        let back = parse_svg(&write_svg(&s)).unwrap();
        assert_eq!(back.nodes[0].label, s.nodes[0].label);
    }

    #[test]
    fn styled_fills_applied() {
        let s = scene();
        let styles = NodeStyles {
            fills: vec![(0, "red".into()), (1, "green".into())],
        };
        let svg = write_svg_styled(&s, &styles);
        assert!(svg.contains(r#"fill="red""#));
        assert!(svg.contains(r#"fill="green""#));
        assert!(svg.contains(r##"fill="#f0f0f0""##));
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_svg("<svg width=\"x\" height=\"1\">").is_err());
        let bad = "<svg width=\"10.0\" height=\"10.0\">\n<g class=\"node\" id=\"n0\">";
        assert!(parse_svg(bad).is_err());
    }

    #[test]
    fn empty_scene_round_trips() {
        let s = SceneGraph {
            width: 10.0,
            height: 5.0,
            ..Default::default()
        };
        let back = parse_svg(&write_svg(&s)).unwrap();
        assert!(back.nodes.is_empty());
        assert!(back.edges.is_empty());
    }
}
