//! The positioned scene graph — what layout produces and what the
//! ZVTM-style viewer consumes.

/// A positioned node.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneNode {
    /// Dot node name (`n3`).
    pub name: String,
    /// Display label (the MAL statement text).
    pub label: String,
    /// Centre x.
    pub x: f64,
    /// Centre y.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl SceneNode {
    /// Does the point fall inside the node's box?
    pub fn contains(&self, px: f64, py: f64) -> bool {
        (px - self.x).abs() <= self.w / 2.0 && (py - self.y).abs() <= self.h / 2.0
    }
}

/// A routed edge (polyline through dummy-node positions).
#[derive(Debug, Clone, PartialEq)]
pub struct SceneEdge {
    /// Source node index into [`SceneGraph::nodes`].
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Polyline points, source to target.
    pub points: Vec<(f64, f64)>,
    /// Optional edge label (the carried MAL variable).
    pub label: Option<String>,
}

/// A laid-out graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SceneGraph {
    /// Positioned nodes.
    pub nodes: Vec<SceneNode>,
    /// Routed edges.
    pub edges: Vec<SceneEdge>,
    /// Canvas width.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
}

impl SceneGraph {
    /// Node index by dot name.
    pub fn node_by_name(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Topmost node containing the point (hit testing for clicks).
    pub fn hit_test(&self, x: f64, y: f64) -> Option<usize> {
        self.nodes.iter().rposition(|n| n.contains(x, y))
    }

    /// Bounding box sanity: every node inside the canvas.
    pub fn in_bounds(&self) -> bool {
        self.nodes.iter().all(|n| {
            n.x - n.w / 2.0 >= -1e-6
                && n.y - n.h / 2.0 >= -1e-6
                && n.x + n.w / 2.0 <= self.width + 1e-6
                && n.y + n.h / 2.0 <= self.height + 1e-6
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, x: f64, y: f64) -> SceneNode {
        SceneNode {
            name: name.into(),
            label: name.into(),
            x,
            y,
            w: 40.0,
            h: 20.0,
        }
    }

    #[test]
    fn contains_and_hit_test() {
        let g = SceneGraph {
            nodes: vec![node("a", 50.0, 50.0), node("b", 50.0, 50.0)],
            edges: vec![],
            width: 100.0,
            height: 100.0,
        };
        assert!(g.nodes[0].contains(55.0, 55.0));
        assert!(!g.nodes[0].contains(90.0, 50.0));
        // Topmost (last drawn) node wins.
        assert_eq!(g.hit_test(50.0, 50.0), Some(1));
        assert_eq!(g.hit_test(0.0, 0.0), None);
    }

    #[test]
    fn lookup_and_bounds() {
        let g = SceneGraph {
            nodes: vec![node("n0", 30.0, 20.0)],
            edges: vec![],
            width: 100.0,
            height: 50.0,
        };
        assert_eq!(g.node_by_name("n0"), Some(0));
        assert_eq!(g.node_by_name("nX"), None);
        assert!(g.in_bounds());
        let g2 = SceneGraph {
            nodes: vec![node("n0", 95.0, 20.0)],
            width: 100.0,
            height: 50.0,
            edges: vec![],
        };
        assert!(!g2.in_bounds());
    }
}
