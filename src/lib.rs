//! # stethoscope — interactive visual analysis of query execution plans
//!
//! A full-system Rust reproduction of *Stethoscope: A platform for
//! interactive visual analysis of query execution plans* (Gawade &
//! Kersten, VLDB 2012), including every substrate the original leaned
//! on: a MonetDB-like columnar engine with a MAL interpreter and
//! multi-core dataflow scheduler, a SQL front end with a mitosis
//! optimizer, the MAL profiler with its UDP textual-Stethoscope client,
//! a dot writer/parser, a Sugiyama layout engine with an SVG round-trip,
//! and a headless ZVTM-style scene graph with paced rendering.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use stethoscope::engine::{ExecOptions, Interpreter, ProfilerConfig, VecSink};
//! use stethoscope::sql::compile;
//! use stethoscope::tpch::{generate_catalog, TpchConfig};
//! use stethoscope::core::OfflineSession;
//! use stethoscope::dot::{plan_to_dot, LabelStyle};
//! use stethoscope::profiler::format_event;
//!
//! // 1. a database and the paper's Figure-1 query
//! let catalog = Arc::new(generate_catalog(&TpchConfig::sf(0.0002)));
//! let q = compile(&catalog, "select l_tax from lineitem where l_partkey = 1").unwrap();
//!
//! // 2. execute with profiling
//! let sink = VecSink::new();
//! let interp = Interpreter::new(Arc::clone(&catalog));
//! interp.execute(&q.plan, &ExecOptions::profiled(ProfilerConfig::to_sink(sink.clone()))).unwrap();
//!
//! // 3. analyse the trace against the plan's dot graph
//! let dot = plan_to_dot(&q.plan, LabelStyle::FullStatement);
//! let trace: Vec<String> = sink.take().iter().map(stethoscope::profiler::format_event).collect();
//! let mut session = OfflineSession::load_text(&dot, &trace.join("\n")).unwrap();
//! session.run_to_end();
//! assert!(session.replay.at_end());
//! # let _ = format_event;
//! ```
//!
//! Each subsystem is re-exported under a short module name below; see
//! `DESIGN.md` for the crate inventory and `EXPERIMENTS.md` for the
//! figure-by-figure reproduction record.

/// The Stethoscope platform: sessions, coloring, replay, analyses.
pub use stetho_core as core;
/// The dot graph language and MAL-plan conversion.
pub use stetho_dot as dot;
/// The columnar execution engine (BATs, interpreter, scheduler).
pub use stetho_engine as engine;
/// Layered graph layout and the SVG pipeline.
pub use stetho_layout as layout;
/// The MAL language model.
pub use stetho_mal as mal;
/// Self-observability: metrics registry, exposition, scrape endpoint.
pub use stetho_obsv as obsv;
/// Profiler events, trace files, filters, UDP streaming.
pub use stetho_profiler as profiler;
/// SQL front end: parser, algebra, codegen, optimizers.
pub use stetho_sql as sql;
/// TPC-H data generation and query texts.
pub use stetho_tpch as tpch;
/// The headless ZVTM substrate (glyphs, cameras, EDT, rendering).
pub use stetho_zvtm as zvtm;

/// True when `--verify` was passed on the command line. The example
/// binaries consult this to statically check their plans (malcheck)
/// before executing them.
pub fn verify_requested() -> bool {
    std::env::args().any(|a| a == "--verify")
}

/// The value following `--<flag>` (or inside `--<flag>=value`) on the
/// command line, if present. The example binaries use this for their
/// `--metrics-addr` / `--chaos` options.
pub fn arg_value(flag: &str) -> Option<String> {
    let long = format!("--{flag}");
    let prefixed = format!("--{flag}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == long {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefixed) {
            return Some(v.to_string());
        }
    }
    None
}

/// When `--verify` was requested, run [`mal::Plan::verify`] on `plan`
/// and print the rendered report under a `label` header. Panics if the
/// verifier finds errors — an example must never execute a plan the
/// static checker rejects.
pub fn verify_plan(label: &str, plan: &mal::Plan) {
    if !verify_requested() {
        return;
    }
    let report = plan.verify();
    println!("=== malcheck: {label} ===");
    print!("{}", report.render(plan));
    println!();
    assert!(
        report.is_clean(),
        "`--verify` found errors in the {label} plan"
    );
}
